"""The P001–P006 checks over the extraction model.

Each check yields ``(rule, message, module, line, col, extra)`` tuples
anchored in scanned modules only; :func:`analyze_paths` applies rule
selection and ``# repro: noqa[P...]`` suppression and returns sorted
:class:`~repro.analysis.findings.Finding` records — the same driver
contract as the lint, flow, dist, and mem passes.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator, Optional

from ..ast_lint import (
    COMPONENT_ROOT,
    ClassInfo,
    ModuleInfo,
    ProjectIndex,
    _base_name,
)
from ..config import AnalysisConfig, is_suppressed
from ..findings import Finding
from ..flow.graph import _CONTROL_PORTS
from .model import (
    A003_ATTRS,
    COMPONENT_HANDLE_API,
    MUTATOR_METHODS,
    ParModel,
    SharedState,
    build_par_model,
    class_body_mutables,
)

_Raw = tuple[str, str, ModuleInfo, int, Optional[int], dict]


def _class_info(
    node: ast.ClassDef, module: ModuleInfo, index: ProjectIndex
) -> ClassInfo:
    """The index record for ``node``, re-bound if the name was reused."""
    info = index.classes.get(node.name)
    if info is not None and info.node is node:
        return info
    rebound = ClassInfo(
        node.name, module, node, tuple(b for b in map(_base_name, node.bases) if b)
    )
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            rebound.methods[item.name] = item
    return rebound


def _first_param(method: ast.FunctionDef) -> Optional[str]:
    args = method.args.posonlyargs + method.args.args
    return args[0].arg if args else None


def _self_attr(expr: ast.expr, selfname: str) -> Optional[str]:
    """``self.attr`` -> ``"attr"``; anything else -> None."""
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == selfname
    ):
        return expr.attr
    return None


def _local_names(method: ast.FunctionDef) -> set[str]:
    """Names bound locally in ``method`` (params, assignments, targets)."""
    out: set[str] = set()
    args = method.args
    for arg in (
        args.posonlyargs + args.args + args.kwonlyargs
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    ):
        out.add(arg.arg)
    for node in ast.walk(method):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            out.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node is not method:
                out.add(node.name)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            out.add(node.name)
        elif isinstance(node, ast.Global):
            out.difference_update(node.names)
    return out


def _instance_assigned_attrs(info: ClassInfo) -> set[str]:
    """Attrs assigned as ``self.x = ...`` anywhere in the class."""
    out: set[str] = set()
    for method in info.methods.values():
        selfname = _first_param(method)
        if selfname is None:
            continue
        for node in ast.walk(method):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            for target in targets:
                attr = _self_attr(target, selfname)
                if attr is not None:
                    out.add(attr)
    return out


def _chain_class_mutables(
    cls: str, index: ProjectIndex
) -> dict[str, tuple[str, int]]:
    """attr -> (declaring class, line) for class-body mutable containers
    of ``cls`` and every indexed base."""
    out: dict[str, tuple[str, int]] = {}
    seen: set[str] = set()
    frontier = [cls]
    while frontier:
        current = frontier.pop()
        if current in seen:
            continue
        seen.add(current)
        info = index.classes.get(current)
        if info is None:
            continue
        for attr, line in class_body_mutables(info.node).items():
            out.setdefault(attr, (current, line))
        frontier.extend(index.bases.get(current, ()))
    return out


# ------------------------------------------------------------------- P001


def _check_divergent_state(
    node: ast.ClassDef,
    module: ModuleInfo,
    model: ParModel,
    info: ClassInfo,
    shared: SharedState,
) -> Iterator[_Raw]:
    handlers = model.handlers_of(node.name)
    #: module-level containers with mutation evidence anywhere in the module
    hot_globals = {
        name: line
        for name, line in shared.module_mutables.items()
        if name in shared.module_mutated
    }
    class_mutables = _chain_class_mutables(node.name, model.index)
    instance_attrs = _instance_assigned_attrs(info)
    #: class attrs shadowed by an instance assignment are per-instance state
    shared_class_attrs = {
        attr: where
        for attr, where in class_mutables.items()
        if attr not in instance_attrs
    }
    for name in sorted(handlers):
        method = info.methods.get(name)
        if method is None:
            continue
        selfname = _first_param(method)
        local = _local_names(method)
        reported: set[tuple[str, int]] = set()

        def report(kind: str, ident: str, line: int, col: Optional[int], msg: str):
            key = (ident, line)
            if key in reported:
                return None
            reported.add(key)
            return (
                "P001",
                msg,
                module,
                line,
                col,
                {"class": node.name, "handler": name, kind: ident},
            )

        for sub in ast.walk(method):
            if isinstance(sub, ast.Global):
                for ident in sub.names:
                    raw = report(
                        "global", ident, sub.lineno, sub.col_offset,
                        f"handler {name} declares 'global {ident}': writes land "
                        "in this process's module namespace only and silently "
                        "diverge per shard worker; keep the state on the "
                        "component instance",
                    )
                    if raw:
                        yield raw
            elif isinstance(sub, ast.Name) and sub.id in hot_globals:
                if sub.id in local or sub.id in module.imports:
                    continue
                raw = report(
                    "name", sub.id, sub.lineno, sub.col_offset,
                    f"handler {name} uses module-level mutable {sub.id} "
                    f"(bound at line {hot_globals[sub.id]} and mutated in this "
                    "module): every shard worker gets an independent copy, so "
                    "the contents silently diverge per process; move the state "
                    "onto the component instance",
                )
                if raw:
                    yield raw
            elif isinstance(sub, ast.Attribute):
                attr = sub.attr
                where = shared_class_attrs.get(attr)
                if where is None:
                    continue
                base = sub.value
                via_class = (
                    isinstance(base, (ast.Name, ast.Attribute))
                    and _base_name(base) in (node.name, where[0])
                ) or (
                    isinstance(base, ast.Attribute)
                    and base.attr == "__class__"
                ) or (
                    isinstance(base, ast.Call)
                    and _base_name(base.func) == "type"
                )
                via_self = selfname is not None and _self_attr(sub, selfname) == attr
                if not (via_class or via_self):
                    continue
                raw = report(
                    "attr", attr, sub.lineno, sub.col_offset,
                    f"handler {name} uses class-level mutable "
                    f"{where[0]}.{attr} (declared at line {where[1]}, never "
                    "shadowed by an instance assignment): the container is "
                    "shared by every instance in this process and diverges "
                    "per shard worker; make it instance state",
                )
                if raw:
                    yield raw


# ------------------------------------------------------------------- P002


def _check_reach_through(
    node: ast.ClassDef,
    module: ModuleInfo,
    model: ParModel,
    info: ClassInfo,
) -> Iterator[_Raw]:
    handle = model.handles.get(node.name)
    if handle is None or not (handle.child_attrs or handle.definition_attrs):
        return
    handlers = model.handlers_of(node.name)
    for name in sorted(handlers):
        method = info.methods.get(name)
        if method is None:
            continue
        selfname = _first_param(method)
        if selfname is None:
            continue
        reported: set[int] = set()
        for sub in ast.walk(method):
            if not isinstance(sub, ast.Attribute):
                continue
            held = _self_attr(sub.value, selfname)
            if held is None or sub.lineno in reported:
                continue
            if held in handle.definition_attrs:
                reported.add(sub.lineno)
                yield (
                    "P002",
                    f"handler {name} accesses .{sub.attr} on self.{held}, a "
                    "held reference to another component instance; a process "
                    "boundary severs the reference — communicate through a "
                    "port (trigger an event) instead",
                    module,
                    sub.lineno,
                    sub.col_offset,
                    {"class": node.name, "handler": name, "attr": held,
                     "access": sub.attr},
                )
            elif held in handle.child_attrs:
                if sub.attr in COMPONENT_HANDLE_API or sub.attr in A003_ATTRS:
                    continue  # port API; .definition/.core are A003's
                reported.add(sub.lineno)
                yield (
                    "P002",
                    f"handler {name} accesses .{sub.attr} on child handle "
                    f"self.{held}; only the port-access API "
                    "(provided/required) survives sharding — route the "
                    "interaction through a channel",
                    module,
                    sub.lineno,
                    sub.col_offset,
                    {"class": node.name, "handler": name, "attr": held,
                     "access": sub.attr},
                )


# ------------------------------------------------------------------- P003


def _check_shard_cut(
    model: ParModel, scanned: dict[str, ModuleInfo]
) -> Iterator[_Raw]:
    graph = model.graph
    reported: set[tuple[str, int, str]] = set()
    for producer in graph.producers:
        if producer.event is None or producer.port_type in _CONTROL_PORTS:
            continue
        verdict = model.dist.verdict(producer.event)
        if verdict.wire_safe:
            continue
        for consumer in graph.consumers_for(
            producer.port_type, producer.direction, producer.event
        ):
            if not model.crosses_shard_cut(producer.component, consumer.component):
                continue
            module = scanned.get(producer.file)
            line, col = producer.line, producer.col
            if module is None:
                module = scanned.get(consumer.file)
                line, col = consumer.line, consumer.col
            if module is None:
                continue  # neither endpoint in the scanned set
            key = (str(module.path), line, producer.event)
            if key in reported:
                continue
            reported.add(key)
            reasons = "; ".join(verdict.reasons)
            yield (
                "P003",
                f"event {producer.event} flows from {producer.component} to "
                f"{consumer.component} on {producer.port_type} — the classes "
                "share no composite subtree, so this edge crosses a candidate "
                f"shard cut, but the event is not wire-safe ({reasons})",
                module,
                line,
                col,
                {
                    "event": producer.event,
                    "producer": producer.component,
                    "consumer": consumer.component,
                    "port_type": producer.port_type,
                    "reasons": list(verdict.reasons),
                },
            )


# ------------------------------------------------------------------- P004

#: Comparison operands that make an ``is`` check process-safe.
_SAFE_SINGLETONS = (type(None), bool, type(...))

#: Enum roots whose members pickle by name back to the canonical object,
#: so identity survives the boundary.
_ENUM_ROOTS = ("Enum", "IntEnum", "StrEnum", "Flag", "IntFlag")


def _identity_safe(expr: ast.expr, index: ProjectIndex) -> bool:
    """True when ``expr`` denotes an object whose identity survives the
    boundary: None/bool/Ellipsis, a class object, ``type(...)``, or an
    enum member (pickle resolves members by name)."""
    if isinstance(expr, ast.Constant):
        return isinstance(expr.value, _SAFE_SINGLETONS)
    if isinstance(expr, ast.Attribute):
        owner = _base_name(expr.value)
        if owner is not None and any(
            index.descends_from(owner, root) for root in _ENUM_ROOTS
        ):
            return True  # EnumClass.MEMBER
        name = _base_name(expr)
        return name is not None and name in index.classes
    if isinstance(expr, ast.Name):
        return expr.id in index.classes
    if isinstance(expr, ast.Call):
        return _base_name(expr.func) == "type"
    return False


def _check_identity_affinity(
    node: ast.ClassDef,
    module: ModuleInfo,
    model: ParModel,
    info: ClassInfo,
) -> Iterator[_Raw]:
    handlers = model.handlers_of(node.name)
    for name in sorted(handlers):
        method = info.methods.get(name)
        if method is None:
            continue
        local = _local_names(method)
        for sub in ast.walk(method):
            if isinstance(sub, ast.Call):
                fn = sub.func
                if (
                    isinstance(fn, ast.Name)
                    and fn.id == "id"
                    and fn.id not in local
                    and fn.id not in module.imports
                ):
                    yield (
                        "P004",
                        f"handler {name} calls id(): the integer is only "
                        "meaningful inside this process and collides or "
                        "dangles across shard workers — key by value "
                        "(address, op id) instead",
                        module,
                        sub.lineno,
                        sub.col_offset,
                        {"class": node.name, "handler": name, "form": "id"},
                    )
            elif isinstance(sub, ast.Compare):
                left = sub.left
                for op, right in zip(sub.ops, sub.comparators):
                    if isinstance(op, (ast.Is, ast.IsNot)):
                        if not (
                            _identity_safe(left, model.index)
                            or _identity_safe(right, model.index)
                        ):
                            yield (
                                "P004",
                                f"handler {name} guards on object identity "
                                f"('{ast.unparse(left)} "
                                f"{'is' if isinstance(op, ast.Is) else 'is not'} "
                                f"{ast.unparse(right)}'): identity does not "
                                "survive a process boundary (decoded payloads "
                                "are fresh objects; Address preserves 'is' "
                                "only via intern()) — compare by value",
                                module,
                                sub.lineno,
                                sub.col_offset,
                                {"class": node.name, "handler": name,
                                 "form": "is"},
                            )
                    left = right


# ------------------------------------------------------------------- P005


def _nonblocking_call(call: ast.Call) -> bool:
    """True when the call explicitly opts out of blocking."""
    for kw in call.keywords:
        if kw.arg in ("block", "blocking") and isinstance(kw.value, ast.Constant):
            if kw.value.value is False:
                return True
    if call.args and isinstance(call.args[0], ast.Constant):
        if call.args[0].value is False:
            return True
    return False


def _check_sync_primitives(
    node: ast.ClassDef,
    module: ModuleInfo,
    model: ParModel,
    info: ClassInfo,
) -> Iterator[_Raw]:
    sync = model.sync_attrs(node.name)
    if not sync:
        return
    handlers = model.handlers_of(node.name)
    for name in sorted(handlers):
        method = info.methods.get(name)
        if method is None:
            continue
        selfname = _first_param(method)
        if selfname is None:
            continue
        for sub in ast.walk(method):
            if isinstance(sub, ast.With):
                for item in sub.items:
                    attr = _self_attr(item.context_expr, selfname)
                    if attr is None or attr not in sync:
                        continue
                    ctor, methods = sync[attr]
                    if "acquire" not in methods:
                        continue
                    yield (
                        "P005",
                        f"handler {name} enters 'with self.{attr}' "
                        f"({ctor}): the handler blocks a scheduler worker "
                        "until the holder releases — a lock-shaped stall "
                        "that can deadlock a shard's worker pool",
                        module,
                        item.context_expr.lineno,
                        item.context_expr.col_offset,
                        {"class": node.name, "handler": name, "attr": attr,
                         "ctor": ctor},
                    )
            elif isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
                attr = _self_attr(sub.func.value, selfname)
                if attr is None or attr not in sync:
                    continue
                ctor, methods = sync[attr]
                if sub.func.attr not in methods or _nonblocking_call(sub):
                    continue
                yield (
                    "P005",
                    f"handler {name} calls self.{attr}.{sub.func.attr}() "
                    f"({ctor}): the handler blocks a scheduler worker — a "
                    "lock-shaped stall that can deadlock a shard's worker "
                    "pool (hand the work to a dedicated thread outside the "
                    "handler, as ThreadTimer/TcpNetwork do)",
                    module,
                    sub.lineno,
                    sub.col_offset,
                    {"class": node.name, "handler": name, "attr": attr,
                     "ctor": ctor, "method": sub.func.attr},
                )


# ------------------------------------------------------------------- P006


def _check_unpinnable(
    node: ast.ClassDef,
    module: ModuleInfo,
    model: ParModel,
) -> Iterator[_Raw]:
    comp = model.component_model(node.name)
    if comp is None or not comp.mutable_attrs or comp.has_state_hooks:
        return
    attrs = ", ".join(sorted(comp.mutable_attrs))
    yield (
        "P006",
        f"{node.name} holds mutable state ({attrs}) but overrides neither "
        "dump_state nor load_state: section-2.6 state transfer cannot "
        "migrate it, so the component is pinned to its birth shard — "
        "implement both hooks (or justify the pin with a noqa)",
        module,
        node.lineno,
        node.col_offset,
        {"class": node.name, "attrs": sorted(comp.mutable_attrs)},
    )


# ----------------------------------------------------------------- driver


def analyze_paths(
    paths: Iterable[Path | str],
    config: Optional[AnalysisConfig] = None,
) -> list[Finding]:
    """Run the par pass over files/directories; returns sorted findings."""
    config = config or AnalysisConfig()
    model, scanned = build_par_model(paths, config)
    index = model.index

    raw: list[_Raw] = []
    for module in scanned.values():
        shared = model.shared[str(module.path)]
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not index.is_component(node.name) or node.name == COMPONENT_ROOT:
                continue
            info = _class_info(node, module, index)
            raw.extend(_check_divergent_state(node, module, model, info, shared))
            raw.extend(_check_reach_through(node, module, model, info))
            raw.extend(_check_identity_affinity(node, module, model, info))
            raw.extend(_check_sync_primitives(node, module, model, info))
            raw.extend(_check_unpinnable(node, module, model))
    raw.extend(_check_shard_cut(model, scanned))

    findings: list[Finding] = []
    for rule_id, message, module, line, col, extra in raw:
        if not config.rule_enabled(rule_id):
            continue
        if is_suppressed(rule_id, module.line(line)):
            continue
        findings.append(
            Finding(
                rule=rule_id,
                message=message,
                file=str(module.path),
                line=line,
                col=col,
                extra=extra,
            )
        )
    findings.sort(key=lambda f: (f.file or "", f.line or 0, f.rule))
    return findings
