"""A004: ``self.subscribe`` of a method without ``@handles``.

``make_subscription`` raises ``SubscriptionError`` at runtime when the
handler carries no ``@handles`` declaration and no ``event_type=`` was
passed — but that only fires when the component is actually constructed.
This rule catches it at lint time, including handlers inherited from
indexed base classes.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..ast_lint import _self_method_ref

RULE = "A004"


def check(ctx) -> Iterator[tuple[str, str, ast.AST]]:
    for call in ctx.subscribe_calls:
        if any(kw.arg == "event_type" for kw in call.keywords):
            continue
        method = _self_method_ref(call)
        if method is None:
            continue
        handler = ctx.index.lookup_method(ctx.info.name, method)
        if handler is None:
            continue  # not resolvable in the index: stay silent
        if handler.event_type is None:
            yield (
                RULE,
                f"subscribe(self.{method}, ...) but {method}() has no "
                f"@handles declaration and no event_type= was given",
                call,
            )
