"""AST lint rules (A001–A005).

Each rule module exposes ``check(ctx) -> Iterator[(rule_id, message, node)]``
where ``ctx`` is a
:class:`~repro.analysis.ast_lint.ComponentClassContext`.  Rules never
import or execute user code; they reason over the syntax tree plus the
name-level :class:`~repro.analysis.ast_lint.ProjectIndex` and stay silent
whenever a name cannot be grounded in the index.
"""

from __future__ import annotations

from . import blocking, isolation, mutation, subscriptions, triggers

AST_CHECKS = (
    mutation.check,        # A001 event-mutation
    blocking.check,        # A002 blocking-call
    isolation.check,       # A003 foreign-state-access
    subscriptions.check,   # A004 subscribe-without-handles
    triggers.check,        # A005 undeclared-trigger
)

__all__ = ["AST_CHECKS"]
