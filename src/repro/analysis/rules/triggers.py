"""A005: trigger of an event type the port cannot carry.

``self.trigger(event, face)`` on one of the component's own port faces
emits in a fixed direction: POSITIVE (indications) on a provided port,
NEGATIVE (requests) on a required one.  When the port type's declaration
for that direction admits neither the event's type nor any of its
(name-level) super/subtypes, the trigger is guaranteed to raise
``PortTypeError`` at runtime.  The check grounds every name in the
project index and skips anything unresolved.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

RULE = "A005"


def check(ctx) -> Iterator[tuple[str, str, ast.AST]]:
    index = ctx.index
    for call, method in ctx.trigger_calls:
        if len(call.args) < 2:
            continue
        event_name = _event_ctor_name(call.args[0], index)
        if event_name is None:
            continue
        port = _resolve_face(call.args[1], ctx, method)
        if port is None:
            continue
        port_name, provided = port
        direction = "positive" if provided else "negative"
        declared = index.port_direction_events(port_name, direction)
        if declared is None:
            continue
        if any(not index.is_event(d) for d in declared):
            continue  # declaration references types outside the index
        if any(index.events_related(event_name, d) for d in declared):
            continue
        yield (
            RULE,
            f"trigger of {event_name} on {'provided' if provided else 'required'} "
            f"{port_name} port: not declared in its {direction} direction "
            f"(would raise PortTypeError)",
            call,
        )


def _event_ctor_name(node: ast.expr, index) -> Optional[str]:
    """Name of the event class when the argument is a direct constructor call."""
    if not isinstance(node, ast.Call):
        return None
    name = node.func.attr if isinstance(node.func, ast.Attribute) else (
        node.func.id if isinstance(node.func, ast.Name) else None
    )
    if name is None or not index.is_event(name) or name not in index.classes:
        return None
    return name


def _resolve_face(
    node: ast.expr, ctx, method: ast.FunctionDef
) -> Optional[tuple[str, bool]]:
    """Resolve a face expression to (port type name, provided?).

    Handles ``self.<attr>`` port attributes and local variables assigned
    from ``self.provides(...)/self.requires(...)`` within the same method.
    Control ports and anything else stay unresolved (no finding).
    """
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return ctx.ports.get(node.attr)
    if isinstance(node, ast.Name):
        local: Optional[tuple[str, bool]] = None
        for stmt in ast.walk(method):
            if not (isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call)):
                continue
            fn = stmt.value.func
            if not (
                isinstance(fn, ast.Attribute)
                and isinstance(fn.value, ast.Name)
                and fn.value.id == "self"
                and fn.attr in ("provides", "requires")
                and stmt.value.args
            ):
                continue
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == node.id:
                    port_name = stmt.value.args[0]
                    name = port_name.id if isinstance(port_name, ast.Name) else None
                    if name is not None:
                        local = (name, fn.attr == "provides")
        return local
    return None
