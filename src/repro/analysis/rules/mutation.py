"""A001: a handler mutates the event it received.

The runtime fans one event *object* out to every compatible subscriber
(paper section 2.3) and may execute those handlers on different worker
threads.  Any in-place mutation of the event — attribute assignment,
``del``, item assignment, or a mutating container-method call on an
attribute reached through the event — is therefore an aliasing data race,
even when it "works" under one subscriber.
"""

from __future__ import annotations

import ast
from typing import Iterator

#: Method names that mutate common containers in place.
MUTATING_METHODS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "clear", "sort",
        "reverse", "add", "discard", "update", "setdefault", "popitem",
        "appendleft", "popleft", "extendleft",
    }
)

RULE = "A001"


def _chain_root(node: ast.expr) -> ast.expr:
    """Innermost expression of an attribute/subscript chain."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node


def _rooted_in(node: ast.expr, param: str) -> bool:
    """Is this attribute/subscript chain anchored at the event parameter?"""
    if not isinstance(node, (ast.Attribute, ast.Subscript)):
        return False
    root = _chain_root(node)
    return isinstance(root, ast.Name) and root.id == param


def check(ctx) -> Iterator[tuple[str, str, ast.AST]]:
    for handler in ctx.handler_methods():
        param = handler.event_param
        if param is None:
            continue
        for node in ast.walk(handler.node):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in _flatten_targets(targets):
                    if _rooted_in(target, param):
                        yield (
                            RULE,
                            f"handler {handler.name}() assigns to "
                            f"{ast.unparse(target)}: events are immutable "
                            f"shared values (copy-on-write instead)",
                            node,
                        )
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if _rooted_in(target, param):
                        yield (
                            RULE,
                            f"handler {handler.name}() deletes "
                            f"{ast.unparse(target)} from a received event",
                            node,
                        )
            elif isinstance(node, ast.Call):
                fn = node.func
                if (
                    isinstance(fn, ast.Attribute)
                    and fn.attr in MUTATING_METHODS
                    and _rooted_in(fn.value, param)
                ):
                    yield (
                        RULE,
                        f"handler {handler.name}() calls "
                        f"{ast.unparse(fn)}(): in-place mutation of state "
                        f"reached through a received event",
                        node,
                    )


def _flatten_targets(targets: list[ast.expr]) -> Iterator[ast.expr]:
    for target in targets:
        if isinstance(target, (ast.Tuple, ast.List)):
            yield from _flatten_targets(list(target.elts))
        else:
            yield target
