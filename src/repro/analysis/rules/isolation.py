"""A003: a handler reaches into another component's state.

Components share nothing (paper section 2.1): all interaction flows
through events on ports.  Dereferencing ``<component>.definition.<attr>``
or ``<component>.core.<attr>`` from a *handler* reads or writes state that
is concurrently owned by another component's mutually-exclusive handler
executions — a data race under the multi-core scheduler.

Construction-time access (``__init__``, before anything executes) is the
sanctioned assembly idiom — e.g. reading a child's bound address while
wiring — and is not flagged; neither are driver scripts outside component
classes, which synchronize externally.
"""

from __future__ import annotations

import ast
from typing import Iterator

RULE = "A003"


def check(ctx) -> Iterator[tuple[str, str, ast.AST]]:
    for handler in ctx.handler_methods():
        if handler.name == "__init__":
            continue
        for node in ast.walk(handler.node):
            if not isinstance(node, ast.Attribute):
                continue
            inner = node.value
            if (
                isinstance(inner, ast.Attribute)
                and inner.attr in ("definition", "core")
                and not _is_self(inner.value)
            ):
                yield (
                    RULE,
                    f"handler {handler.name}() accesses "
                    f"{ast.unparse(node)}: share-nothing violation — "
                    f"communicate through events instead",
                    node,
                )


def _is_self(node: ast.expr) -> bool:
    return isinstance(node, ast.Name) and node.id == "self"
