"""A002: blocking calls inside event handlers.

Handlers execute on scheduler workers; a handler that sleeps or performs
synchronous I/O stalls a whole worker (paper section 3: handlers must be
non-blocking; long-running work belongs in dedicated components that
bridge to threads, like TcpNetwork and ThreadTimer do outside their
handlers).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

RULE = "A002"

#: Dotted call targets that block (resolved through the module's imports).
BLOCKING_DOTTED = frozenset(
    {
        "time.sleep",
        "socket.socket",
        "socket.create_connection",
        "socket.getaddrinfo",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "urllib.request.urlopen",
        "requests.get",
        "requests.post",
        "requests.put",
        "requests.request",
        "select.select",
        "os.system",
    }
)

#: Bare builtins that block.
BLOCKING_BARE = frozenset({"open", "input"})


def _dotted_name(node: ast.expr) -> Optional[str]:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def check(ctx) -> Iterator[tuple[str, str, ast.AST]]:
    imports = ctx.module.imports
    for handler in ctx.handler_methods():
        for node in ast.walk(handler.node):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            if dotted is None:
                continue
            resolved = _resolve(dotted, imports)
            if resolved in BLOCKING_DOTTED or (
                "." not in dotted and dotted in BLOCKING_BARE
            ):
                yield (
                    RULE,
                    f"handler {handler.name}() calls blocking {resolved or dotted}(): "
                    f"handlers must not block a scheduler worker",
                    node,
                )


def _resolve(dotted: str, imports: dict[str, str]) -> Optional[str]:
    """Map a call like ``sleep(...)`` or ``t.sleep(...)`` through imports."""
    head, _, rest = dotted.partition(".")
    target = imports.get(head)
    if target is None:
        return dotted if dotted in BLOCKING_DOTTED else None
    return f"{target}.{rest}" if rest else target
