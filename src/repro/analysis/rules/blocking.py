"""A002: blocking calls inside event handlers.

Handlers execute on scheduler workers; a handler that sleeps or performs
synchronous I/O stalls a whole worker (paper section 3: handlers must be
non-blocking; long-running work belongs in dedicated components that
bridge to threads, like TcpNetwork and ThreadTimer do outside their
handlers).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

RULE = "A002"

#: Dotted call targets that block (resolved through the module's imports).
BLOCKING_DOTTED = frozenset(
    {
        "time.sleep",
        "socket.socket",
        "socket.create_connection",
        "socket.getaddrinfo",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "urllib.request.urlopen",
        "requests.get",
        "requests.post",
        "requests.put",
        "requests.request",
        "select.select",
        "os.system",
    }
)

#: Bare builtins that block.
BLOCKING_BARE = frozenset({"open", "input"})

#: File-I/O methods chained directly onto a ``pathlib.Path(...)``
#: construction — ``Path(p).open()`` reaches the same syscall as the bare
#: ``open(p)`` but hides behind a Call receiver the dotted resolver
#: cannot name.
BLOCKING_PATH_METHODS = frozenset(
    {"open", "read_text", "read_bytes", "write_text", "write_bytes"}
)

#: Bound-method names that block on a socket-like endpoint.  The receiver
#: of ``conn.recv(...)`` is a runtime object no import table can resolve,
#: so these are matched by name; the set is kept to names distinctive to
#: blocking endpoints (``connect`` is deliberately absent — too many
#: component APIs use it for wiring).
BLOCKING_BOUND_METHODS = frozenset({"accept", "recv", "recvfrom", "recv_into"})


def _dotted_name(node: ast.expr) -> Optional[str]:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def check(ctx) -> Iterator[tuple[str, str, ast.AST]]:
    imports = ctx.module.imports
    for handler in ctx.handler_methods():
        for node in ast.walk(handler.node):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            if dotted is not None:
                resolved = _resolve(dotted, imports)
                if resolved in BLOCKING_DOTTED or (
                    "." not in dotted and dotted in BLOCKING_BARE
                ):
                    yield (
                        RULE,
                        f"handler {handler.name}() calls blocking "
                        f"{resolved or dotted}(): handlers must not block "
                        f"a scheduler worker",
                        node,
                    )
                    continue
            if not isinstance(node.func, ast.Attribute):
                continue
            method = node.func.attr
            receiver = node.func.value
            if (
                method in BLOCKING_PATH_METHODS
                and isinstance(receiver, ast.Call)
                and _resolve(_dotted_name(receiver.func) or "", imports)
                == "pathlib.Path"
            ):
                yield (
                    RULE,
                    f"handler {handler.name}() calls blocking "
                    f"pathlib.Path(...).{method}(): handlers must not "
                    f"block a scheduler worker",
                    node,
                )
            elif method in BLOCKING_BOUND_METHODS:
                yield (
                    RULE,
                    f"handler {handler.name}() calls .{method}(), a "
                    f"blocking socket-style receive: handlers must not "
                    f"block a scheduler worker",
                    node,
                )


def _resolve(dotted: str, imports: dict[str, str]) -> Optional[str]:
    """Map a call like ``sleep(...)`` or ``t.sleep(...)`` through imports."""
    head, _, rest = dotted.partition(".")
    target = imports.get(head)
    if target is None:
        return dotted if dotted in BLOCKING_DOTTED else None
    return f"{target}.{rest}" if rest else target
