"""Built-in scenarios for the race analysis CLI and its test suite.

A scenario is ``scenario(sim) -> check | None``: it builds components
inside the provided :class:`~repro.simulation.core.Simulation` (and may
schedule driver actions on the virtual clock); the optional returned
``check()`` runs after the simulation and raises on application-level
failure.  Each fixture demonstrates one analysis mode:

===================  =========================================================
``clean``            request/response pipeline with share-nothing state —
                     zero findings under every mode
``racy``             one mutable list fanned out inside an event to two
                     subscribers that both mutate it — R001
``order-bug``        deposit/withdraw scheduled at the same virtual
                     timestamp; FIFO passes, the swap faults — R003 via
                     ``--explore``, then ``--replay``
``nondet``           handler branches on the process-global RNG — R002
``nondet-clock``     delay derived from the wall clock — R002 (time drift)
``cats-churn``       CATS cluster under same-timestamp churn + workload,
                     checked linearizable (exploration target)
``abd``              concurrent ABD puts/gets on one key, checked
                     linearizable (exploration target)
===================  =========================================================

Not imported by ``repro.analysis.race`` itself: the CATS fixtures pull in
the full store stack, which analysis users should not pay for.  The CLI
and tests import this module directly; third-party scenarios are
addressed as ``module:function`` specs (see :func:`resolve_scenario`).
"""

from __future__ import annotations

import importlib
import random as _global_random
import time as _time
from dataclasses import dataclass, field
from typing import Callable, Optional

from ...core import dispatch as _dispatch
from ...core.component import ComponentDefinition
from ...core.event import Event
from ...core.handler import handles
from ...core.lifecycle import Start
from ...core.port import PortType
from ...simulation.core import Simulation


class _Root(ComponentDefinition):
    """A bootstrap root whose children/wiring are supplied by the scenario."""

    def __init__(self, builder: Callable[["_Root"], None]) -> None:
        super().__init__()
        builder(self)


def _inject(definition: ComponentDefinition, port_type, event, provided=True) -> None:
    """Trigger an event into a component's port from a scheduled action."""
    core = definition.core
    _dispatch.trigger(event, core.port(port_type, provided=provided).outside)


# --------------------------------------------------------------------- events


@dataclass(frozen=True, slots=True)
class Ask(Event):
    n: int = 0


@dataclass(frozen=True, slots=True)
class Reply(Event):
    n: int = 0


@dataclass(frozen=True, slots=True)
class Job(Event):
    #: deliberately mutable: fan-out aliases this one list to every subscriber
    results: list = field(default_factory=list)  # repro: noqa[M006]


@dataclass(frozen=True, slots=True)
class Deposit(Event):
    amount: int = 0


@dataclass(frozen=True, slots=True)
class Withdraw(Event):
    amount: int = 0


@dataclass(frozen=True, slots=True)
class Coin(Event):
    heads: bool = False


class RelayPort(PortType):
    positive = (Reply,)
    negative = (Ask,)


class WorkPort(PortType):
    positive = ()
    negative = (Job,)


class BankPort(PortType):
    positive = ()
    negative = (Deposit, Withdraw)


class CoinPort(PortType):
    positive = ()
    negative = (Coin,)


# ------------------------------------------------------------ clean pipeline


class _EchoServer(ComponentDefinition):
    def __init__(self) -> None:
        super().__init__()
        self.port = self.provides(RelayPort)
        self.served = 0
        self.subscribe(self.on_request, self.port)

    @handles(Ask)
    def on_request(self, request: Ask) -> None:
        self.served += 1
        self.trigger(Reply(request.n), self.port)


# Deterministic race-fixture scaffolding, confined to one simulation
# process; never a shard-migration candidate.
class _EchoClient(ComponentDefinition):  # repro: noqa[P006]
    def __init__(self, count: int = 5) -> None:
        super().__init__()
        self.port = self.requires(RelayPort)
        self.count = count
        self.responses: list[int] = []
        self.subscribe(self.on_start, self.control)
        self.subscribe(self.on_response, self.port)

    @handles(Start)
    def on_start(self, _event: Start) -> None:
        for n in range(self.count):
            self.trigger(Ask(n), self.port)

    @handles(Reply)
    def on_response(self, response: Reply) -> None:
        # Bounded by ``count`` Asks sent at Start; fixture-scoped.
        self.responses.append(response.n)  # repro: noqa[M002]


def clean_pipeline(sim: Simulation):
    """Share-nothing request/response: no findings under any mode."""
    built = {}

    def build(root: _Root) -> None:
        server = root.create(_EchoServer)
        client = root.create(_EchoClient, count=5)
        root.connect(server.provided(RelayPort), client.required(RelayPort))
        built["client"] = client.definition

    sim.bootstrap(_Root, build)

    def check() -> None:
        client = built["client"]
        if sorted(client.responses) != list(range(client.count)):
            raise AssertionError(f"lost responses: {client.responses}")

    return check


# ---------------------------------------------------------- racy shared list


class _JobProducer(ComponentDefinition):
    def __init__(self) -> None:
        super().__init__()
        self.out = self.requires(WorkPort)
        self.subscribe(self.on_start, self.control)

    @handles(Start)
    def on_start(self, _event: Start) -> None:
        # One Job object fans out to every connected worker: its ``results``
        # list becomes shared mutable state with no ordering between them.
        self.trigger(Job(results=[]), self.out)


class _JobWorker(ComponentDefinition):
    def __init__(self, tag: str) -> None:
        super().__init__()
        self.port = self.provides(WorkPort)
        self.tag = tag
        self.subscribe(self.on_job, self.port)

    @handles(Job)
    def on_job(self, job: Job) -> None:
        # The race on display, suppressed from the lint gate so the runtime
        # detector (R001) gets to find it.  # repro: noqa[A001]
        job.results.append(self.tag)  # repro: noqa[A001]


def racy_shared_list(sim: Simulation):
    """Two subscribers mutate one list carried inside a fanned-out event."""
    built = {}

    def build(root: _Root) -> None:
        producer = root.create(_JobProducer)
        for tag in ("worker-a", "worker-b"):
            worker = root.create(_JobWorker, tag, name=tag)
            root.connect(worker.provided(WorkPort), producer.required(WorkPort))
        built["producer"] = producer.definition

    sim.bootstrap(_Root, build)
    return None


# ------------------------------------------------------- order-dependent bug


class _Bank(ComponentDefinition):
    def __init__(self) -> None:
        super().__init__()
        self.port = self.provides(BankPort)
        self.balance = 0
        # Driven by the explorer's _inject helper (direct port injection the
        # static flow pass cannot see), not by in-tree trigger sites.
        self.subscribe(self.on_deposit, self.port)  # repro: noqa[F002]
        self.subscribe(self.on_withdraw, self.port)  # repro: noqa[F002]

    @handles(Deposit)
    def on_deposit(self, event: Deposit) -> None:
        self.balance += event.amount

    @handles(Withdraw)
    def on_withdraw(self, event: Withdraw) -> None:
        if event.amount > self.balance:
            raise ValueError(
                f"overdraft: withdraw {event.amount} with balance {self.balance}"
            )
        self.balance -= event.amount


def order_dependent_transfer(sim: Simulation):
    """Deposit and withdraw race at one timestamp; only FIFO order is safe.

    Both actions are scheduled for the same virtual instant, so the event
    queue holds a genuine tie: the FIFO baseline deposits first and
    passes, while a schedule that dispatches the withdrawal first faults
    with an overdraft — a minimal schedule-dependent bug for
    ``--explore`` / ``--replay``.
    """
    built = {}

    def build(root: _Root) -> None:
        built["bank"] = root.create(_Bank).definition

    sim.bootstrap(_Root, build)
    bank = built["bank"]
    sim.schedule(1.0, lambda: _inject(bank, BankPort, Deposit(100)))
    sim.schedule(1.0, lambda: _inject(bank, BankPort, Withdraw(100)))

    def check() -> None:
        if bank.balance != 0:
            raise AssertionError(f"unbalanced books: {bank.balance}")

    return check


# --------------------------------------------------------- nondeterministic


class _CoinFlipper(ComponentDefinition):
    """Branches on the *process-global* RNG — invisible to the seed."""

    FLIPS = 24

    def __init__(self) -> None:
        super().__init__()
        self.out = self.requires(CoinPort)
        self.subscribe(self.on_start, self.control)

    @handles(Start)
    def on_start(self, _event: Start) -> None:
        for _ in range(self.FLIPS):
            # the bug on display: an unseeded draw decides what executes
            if _global_random.getrandbits(1):
                self.trigger(Coin(heads=True), self.out)


class _CoinCounter(ComponentDefinition):
    def __init__(self) -> None:
        super().__init__()
        self.port = self.provides(CoinPort)
        self.heads = 0
        self.subscribe(self.on_coin, self.port)

    @handles(Coin)
    def on_coin(self, coin: Coin) -> None:
        self.heads += 1


def nondet_rng(sim: Simulation):
    """Unseeded randomness: two same-seed runs execute different events."""
    def build(root: _Root) -> None:
        flipper = root.create(_CoinFlipper)
        # All Coin trace entries are identical tuples, so the number of heads
        # is the only divergence channel the flips provide (two runs collide
        # with probability ~1/sqrt(pi * FLIPS)).  An unseeded draw in the
        # component *name* puts every entry of this counter on its own key,
        # making same-trace collisions vanishingly unlikely.
        counter = root.create(
            _CoinCounter, name=f"counter-{_global_random.getrandbits(32):08x}"
        )
        root.connect(counter.provided(CoinPort), flipper.required(CoinPort))

    sim.bootstrap(_Root, build)
    return None


def nondet_clock(sim: Simulation):
    """A virtual delay derived from the wall clock: times drift per run."""
    built = {}

    def build(root: _Root) -> None:
        built["bank"] = root.create(_Bank).definition

    sim.bootstrap(_Root, build)
    bank = built["bank"]
    # The bug on display: a wall-clock read leaking into virtual time.
    skew = (_time.perf_counter() * 1_000.0) % 1.0
    sim.schedule(1.0 + skew, lambda: _inject(bank, BankPort, Deposit(1)))
    return None


# ------------------------------------------------------------- CATS fixtures


def _build_cats(sim: Simulation, node_ids):
    from ...cats import CatsConfig, CatsSimulator, Experiment, JoinNode, KeySpace

    built = {}

    def build(root: _Root) -> None:
        built["cats"] = root.create(
            CatsSimulator,
            CatsConfig(
                key_space=KeySpace(bits=16),
                replication_degree=3,
                stabilize_period=0.25,
                fd_interval=0.5,
                op_timeout=1.0,
            ),
        ).definition

    sim.bootstrap(_Root, build)
    cats = built["cats"]
    for offset, node_id in enumerate(node_ids):
        sim.schedule(
            0.5 + offset * 1.5,
            lambda nid=node_id: _inject(cats, Experiment, JoinNode(nid)),
        )
    return cats, Experiment


def cats_churn(sim: Simulation):
    """CATS under same-timestamp churn + workload; history must linearize."""
    from ...cats import FailNode, GetCmd, JoinNode, PutCmd
    from ...consistency import check_history

    node_ids = [100, 12_100, 24_100, 36_100, 48_100]
    cats, experiment = _build_cats(sim, node_ids)
    key = 1_111
    # Same-timestamp ties: churn and workload land at one virtual instant,
    # giving the explorer real reordering freedom.
    sim.schedule(12.0, lambda: _inject(cats, experiment, PutCmd(100, key, "v1")))
    sim.schedule(12.0, lambda: _inject(cats, experiment, FailNode(24_100)))
    sim.schedule(12.0, lambda: _inject(cats, experiment, GetCmd(36_100, key)))
    sim.schedule(16.0, lambda: _inject(cats, experiment, PutCmd(48_100, key, "v2")))
    sim.schedule(16.0, lambda: _inject(cats, experiment, JoinNode(54_000)))
    sim.schedule(16.0, lambda: _inject(cats, experiment, GetCmd(100, key)))

    def check() -> None:
        result = check_history(cats.history)
        if not result.linearizable:
            raise AssertionError(f"history not linearizable: {result.reason}")
        completed = cats.stats.puts_completed + cats.stats.gets_completed
        issued = cats.stats.puts_issued + cats.stats.gets_issued
        if issued and completed < issued * 0.5:
            raise AssertionError(f"workload starved: {completed}/{issued} completed")

    return check


cats_churn.default_until = 40.0  # type: ignore[attr-defined]


def abd_read_write(sim: Simulation):
    """Concurrent ABD puts/gets on one key; history must linearize."""
    from ...cats import GetCmd, PutCmd
    from ...consistency import check_history

    node_ids = [100, 20_000, 40_000]
    cats, experiment = _build_cats(sim, node_ids)
    key = 7_777
    sim.schedule(10.0, lambda: _inject(cats, experiment, PutCmd(100, key, "a")))
    sim.schedule(10.0, lambda: _inject(cats, experiment, PutCmd(20_000, key, "b")))
    sim.schedule(10.0, lambda: _inject(cats, experiment, GetCmd(40_000, key)))
    sim.schedule(13.0, lambda: _inject(cats, experiment, GetCmd(100, key)))

    def check() -> None:
        result = check_history(cats.history)
        if not result.linearizable:
            raise AssertionError(f"history not linearizable: {result.reason}")
        if cats.stats.gets_completed < 2:
            raise AssertionError(f"reads starved: {cats.stats.gets_completed}")

    return check


abd_read_write.default_until = 30.0  # type: ignore[attr-defined]


# ------------------------------------------------------------------ registry

FIXTURES: dict[str, Callable] = {
    "clean": clean_pipeline,
    "racy": racy_shared_list,
    "order-bug": order_dependent_transfer,
    "nondet": nondet_rng,
    "nondet-clock": nondet_clock,
    "cats-churn": cats_churn,
    "abd": abd_read_write,
}

#: Canonical spec string for each fixture (stored in replay files).
SPECS: dict[str, str] = {
    name: f"{__name__}:{fn.__name__}" for name, fn in FIXTURES.items()
}


def resolve_scenario(spec: str) -> Callable:
    """A scenario callable from a fixture alias or ``module:function`` spec."""
    if spec in FIXTURES:
        return FIXTURES[spec]
    if ":" not in spec:
        known = ", ".join(sorted(FIXTURES))
        raise ValueError(f"unknown scenario {spec!r}; fixtures: {known}")
    module_name, _, attr = spec.partition(":")
    module = importlib.import_module(module_name)
    scenario = getattr(module, attr, None)
    if not callable(scenario):
        raise ValueError(f"{spec!r} does not name a callable scenario")
    return scenario


def default_until(scenario: Callable) -> Optional[float]:
    """A fixture's suggested ``--until`` horizon, if it declares one."""
    return getattr(scenario, "default_until", None)
