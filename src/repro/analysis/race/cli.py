"""``python -m repro.analysis race`` — the concurrency-analysis front-end.

Modes (mutually exclusive):

- *default*: run the scenario once under happens-before tracking and
  report unordered conflicting object accesses (R001);
- ``--determinism``: run it twice (``--runs N``) with one seed and diff
  the stable trace fingerprints (R002);
- ``--explore N``: search N permuted schedules for a failing
  interleaving, shrink it, and (with ``--output``) write a replay file
  (R003);
- ``--replay FILE``: re-execute the exact interleaving recorded in a
  replay file.

``SCENARIO`` is a built-in fixture alias (``--list-fixtures``) or a
``module:function`` spec resolving to ``scenario(sim) -> check | None``.
Exit status mirrors the linter: 0 clean, 1 findings, 2 usage errors —
inverted by ``--expect-failure`` for CI jobs that assert a known bug
stays discoverable.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from ...simulation.core import Simulation
from ..findings import Finding, to_json
from ..sarif import write_sarif
from . import fixtures as _fixtures
from .determinism import check_determinism
from .explorer import explore, load_replay, replay, save_replay
from .hooks import race_tracking


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis race",
        description="happens-before race detection, determinism checking, "
        "and schedule exploration for the component runtime",
    )
    parser.add_argument(
        "scenario",
        nargs="?",
        help="fixture alias or module:function spec (optional with --replay)",
    )
    parser.add_argument("--seed", type=int, default=0, help="simulation seed (default 0)")
    parser.add_argument(
        "--until",
        type=float,
        default=None,
        help="virtual-time horizon (default: the fixture's own, else quiescence)",
    )
    parser.add_argument(
        "--max-dispatches",
        type=int,
        default=None,
        help="stop after this many timed dispatches",
    )
    parser.add_argument(
        "--determinism", action="store_true", help="run twice and diff traces (R002)"
    )
    parser.add_argument(
        "--runs", type=int, default=2, help="runs for --determinism (default 2)"
    )
    parser.add_argument(
        "--explore",
        type=int,
        default=None,
        metavar="N",
        help="search N permuted schedules for a failure (R003)",
    )
    parser.add_argument(
        "--schedule-seed",
        type=int,
        default=0,
        help="seed for the schedule search (default 0)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="write the shrunk failing schedule as a replay file",
    )
    parser.add_argument(
        "--replay",
        default=None,
        metavar="FILE",
        help="re-execute the interleaving recorded in a replay file",
    )
    parser.add_argument(
        "--expect-failure",
        action="store_true",
        help="invert the exit status: succeed only if the bug was found "
        "(--explore) or reproduced (--replay)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", help="output format"
    )
    parser.add_argument(
        "--sarif",
        default=None,
        metavar="FILE",
        help="additionally write findings as a SARIF 2.1.0 log ('-' for stdout)",
    )
    parser.add_argument(
        "--list-fixtures", action="store_true", help="print built-in scenarios and exit"
    )
    return parser


def _emit(findings: list[Finding], fmt: str) -> None:
    if fmt == "json":
        print(to_json(findings))
        return
    for finding in findings:
        print(finding.format())
    if findings:
        print(f"\n{len(findings)} finding(s)")


def _race_once(scenario, seed, until, max_dispatches) -> tuple[list[Finding], Optional[str]]:
    failure = None
    with race_tracking() as runtime:
        sim = Simulation(seed=seed)
        try:
            check = scenario(sim)
            sim.run(until=until, max_dispatches=max_dispatches)
            if check is not None:
                check()
        except Exception as exc:  # noqa: BLE001 - report, keep the findings
            failure = f"{type(exc).__name__}: {exc}"
    return runtime.findings(), failure


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_fixtures:
        for name in sorted(_fixtures.FIXTURES):
            fn = _fixtures.FIXTURES[name]
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name:<14} {doc}")
        return 0

    if args.replay is not None:
        try:
            data = load_replay(args.replay)
            scenario = (
                _fixtures.resolve_scenario(args.scenario) if args.scenario else None
            )
            result = replay(data, scenario=scenario)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(result.format())
        if args.expect_failure:
            return 0 if result.reproduced else 1
        return 1 if result.failure is not None else 0

    if not args.scenario:
        parser.print_usage(sys.stderr)
        print(
            "error: scenario required (or --replay FILE / --list-fixtures)",
            file=sys.stderr,
        )
        return 2
    try:
        scenario = _fixtures.resolve_scenario(args.scenario)
    except (ValueError, ImportError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    until = args.until if args.until is not None else _fixtures.default_until(scenario)
    spec = _fixtures.SPECS.get(args.scenario, args.scenario)

    if args.determinism:
        report = check_determinism(
            scenario,
            runs=args.runs,
            seed=args.seed,
            until=until,
            max_dispatches=args.max_dispatches,
        )
        if args.sarif is not None:
            write_sarif(report.findings, args.sarif)
        if args.format == "json":
            print(to_json(report.findings))
        else:
            print(report.format())
        if args.expect_failure:
            return 0 if report.findings else 1
        return 1 if report.findings else 0

    if args.explore is not None:
        result = explore(
            scenario,
            budget=args.explore,
            seed=args.schedule_seed,
            until=until,
            scenario_seed=args.seed,
            max_dispatches=args.max_dispatches,
            scenario_spec=spec,
        )
        if args.sarif is not None:
            write_sarif(result.findings, args.sarif)
        if args.format == "json":
            print(to_json(result.findings))
        else:
            print(result.format())
        if result.found and args.output:
            path = save_replay(args.output, result)
            print(f"replay file written: {path}")
        if args.expect_failure:
            return 0 if result.found else 1
        return 1 if (result.found or result.baseline_failed) else 0

    findings, failure = _race_once(scenario, args.seed, until, args.max_dispatches)
    if args.sarif is not None:
        write_sarif(findings, args.sarif)
    _emit(findings, args.format)
    if failure is not None:
        print(f"note: scenario failed during the run: {failure}", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
