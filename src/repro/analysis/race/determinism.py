"""Determinism checking: run a scenario twice, diff the traces (R002).

The paper's claim (section 3) is that simulation mode is *fully
deterministic*: same seed, same code ⇒ same execution.  The checker makes
that claim testable for any scenario: run it N times in fresh
:class:`~repro.simulation.core.Simulation` instances with identical
seeds, capture a :class:`~repro.runtime.trace.Tracer` trace of every
handler execution, and compare stable fingerprints byte-for-byte.

When traces differ, the diff is interpreted modulo happens-before
commutativity: two runs that execute the same per-component event
sequences at the same virtual times merely interleaved concurrent
handlers differently, which the model permits.  Anything else is rule
**R002**, reported with the first diverging event and a root-cause
classification:

- ``wall-clock read`` — same logical events, diverging virtual times
  (some delay was derived from real time);
- ``iteration-order`` — same event multiset, different per-component
  order (dict/set iteration feeding a fan-out);
- ``unseeded randomness`` — the runs executed different event sets
  (an RNG or data-dependent branch outside the seeded simulation).

A scenario is a callable ``scenario(sim) -> check | None`` that builds
components inside the provided simulation; the optional returned
``check()`` callable runs after the simulation and may raise to signal
an application-level failure (used by the schedule explorer).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ...runtime.trace import TraceEntry, Tracer
from ...simulation.core import Simulation
from ..findings import Finding

Scenario = Callable[[Simulation], Optional[Callable[[], None]]]


def _run_once(
    scenario: Scenario,
    seed: int,
    until: Optional[float],
    max_dispatches: Optional[int],
) -> tuple[Tracer, str]:
    sim = Simulation(seed=seed, fault_policy="raise")
    tracer = Tracer(capacity=1_000_000)
    sim.system.tracer = tracer
    check = scenario(sim)
    status = sim.run(until=until, max_dispatches=max_dispatches)
    if check is not None:
        check()
    return tracer, status


def _per_component(
    entries: Sequence[TraceEntry], with_time: bool
) -> dict[str, tuple]:
    projections: dict[str, list] = {}
    for entry in entries:
        item = (entry.time, entry.event_type) if with_time else entry.event_type
        projections.setdefault(entry.component, []).append(item)
    return {component: tuple(items) for component, items in projections.items()}


def compare_traces(
    first: Sequence[TraceEntry], second: Sequence[TraceEntry]
) -> dict:
    """Diff two traces; returns a dict with keys ``identical``,
    ``hb_equivalent``, ``index``, ``left``, ``right``, ``cause``."""
    a, b = list(first), list(second)
    if a == b:
        return {
            "identical": True,
            "hb_equivalent": True,
            "index": None,
            "left": None,
            "right": None,
            "cause": None,
        }
    index = 0
    for index in range(max(len(a), len(b))):  # noqa: B007 - first mismatch
        if index >= len(a) or index >= len(b) or a[index] != b[index]:
            break
    left = a[index] if index < len(a) else None
    right = b[index] if index < len(b) else None

    # Same per-component (time, event) sequences: only the interleaving of
    # concurrent handlers differs, which happens-before permits.
    if _per_component(a, True) == _per_component(b, True):
        return {
            "identical": False,
            "hb_equivalent": True,
            "index": index,
            "left": left,
            "right": right,
            "cause": None,
        }

    if _per_component(a, False) == _per_component(b, False):
        cause = (
            "wall-clock read: both runs execute the same logical events but "
            "their virtual times diverge — some delay or timestamp was "
            "derived from real time instead of the simulation clock"
        )
    elif Counter((e.component, e.event_type) for e in a) == Counter(
        (e.component, e.event_type) for e in b
    ):
        cause = (
            "iteration-order nondeterminism: the same events execute in a "
            "different per-component order — typically a dict/set iteration "
            "feeding a fan-out or subscription order"
        )
    else:
        cause = (
            "unseeded randomness or data-dependent branching: the runs "
            "executed different event sets — an RNG outside the simulation "
            "seed, or branching on ids/hashes/real time"
        )
    return {
        "identical": False,
        "hb_equivalent": False,
        "index": index,
        "left": left,
        "right": right,
        "cause": cause,
    }


@dataclass
class DeterminismReport:
    """Outcome of :func:`check_determinism`."""

    deterministic: bool
    hb_equivalent: bool
    fingerprints: list[str]
    statuses: list[str]
    entry_counts: list[int]
    divergence: Optional[dict]
    cause: Optional[str]
    findings: list[Finding] = field(default_factory=list)

    def format(self) -> str:
        lines = []
        for run, (fp, status, count) in enumerate(
            zip(self.fingerprints, self.statuses, self.entry_counts)
        ):
            lines.append(f"run {run}: fingerprint={fp} status={status} entries={count}")
        if self.deterministic:
            lines.append("deterministic: traces are byte-identical")
        elif self.hb_equivalent:
            lines.append(
                "traces differ but are happens-before equivalent "
                "(concurrent handlers interleaved differently)"
            )
        else:
            divergence = self.divergence or {}
            lines.append(f"NOT deterministic: first divergence at entry {divergence.get('index')}")
            lines.append(f"  run 0: {divergence.get('left')}")
            lines.append(f"  run 1: {divergence.get('right')}")
            lines.append(f"  cause: {self.cause}")
        return "\n".join(lines)


def check_determinism(
    scenario: Scenario,
    runs: int = 2,
    seed: int = 0,
    until: Optional[float] = None,
    max_dispatches: Optional[int] = None,
) -> DeterminismReport:
    """Run ``scenario`` ``runs`` times with one seed and diff the traces."""
    if runs < 2:
        raise ValueError("need at least two runs to compare")
    tracers: list[Tracer] = []
    statuses: list[str] = []
    for _ in range(runs):
        tracer, status = _run_once(scenario, seed, until, max_dispatches)
        tracers.append(tracer)
        statuses.append(status)

    fingerprints = [tracer.fingerprint() for tracer in tracers]
    reference = list(tracers[0].entries)
    divergence: Optional[dict] = None
    cause: Optional[str] = None
    hb_equivalent = True
    for tracer in tracers[1:]:
        diff = compare_traces(reference, list(tracer.entries))
        if diff["identical"]:
            continue
        if divergence is None:
            divergence = {
                "index": diff["index"],
                "left": str(diff["left"]),
                "right": str(diff["right"]),
            }
        if not diff["hb_equivalent"]:
            hb_equivalent = False
            cause = diff["cause"]
            break

    deterministic = len(set(fingerprints)) == 1
    findings: list[Finding] = []
    if not deterministic and not hb_equivalent:
        findings.append(
            Finding(
                rule="R002",
                message=(
                    f"scenario is not deterministic under a fixed seed: first "
                    f"divergence at trace entry {divergence['index'] if divergence else '?'} "
                    f"(run 0: {divergence['left'] if divergence else '?'} | "
                    f"run 1: {divergence['right'] if divergence else '?'}); {cause}"
                ),
                obj="determinism-check",
                extra={
                    "fingerprints": fingerprints,
                    "divergence": divergence,
                    "cause": cause,
                },
            )
        )
    return DeterminismReport(
        deterministic=deterministic,
        hb_equivalent=hb_equivalent,
        fingerprints=fingerprints,
        statuses=statuses,
        entry_counts=[len(t.entries) for t in tracers],
        divergence=divergence,
        cause=cause,
        findings=findings,
    )
