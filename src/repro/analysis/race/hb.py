"""Happens-before tracking: vector clocks over handler executions.

The tracked partial order is the one the component model actually
guarantees, not the accidental serialization of any particular scheduler:

===========================  ===================================================
edge                         why it is real
===========================  ===================================================
program order                one component's handler executions are mutually
                             exclusive and FIFO, so they are totally ordered
trigger → delivery           an event's handlers run after the trigger that
                             published it (the stamp travels on the event)
schedule → timed dispatch    a queue entry fires after the execution that
                             scheduled it (timer expiry, emulated delivery)
channel resume → delivery    events queued while a channel was held are
                             delivered because someone called ``resume()``
channel plug → delivery      events queued toward an unplugged end flow
                             because someone re-plugged the channel
lifecycle Start/Stop         carried by the trigger edge: a parent's (or the
                             bootstrapper's) Start precedes the child handler
reconfig state transfer      everything the replaced component did precedes
                             everything its successor does
===========================  ===================================================

Deliberately *absent*: edges between consecutive timed dispatches (the
simulation loop serializes them, the multi-core runtime would not) and
between different components' executions that merely happened to run
back-to-back on one worker.  Two epochs with concurrent clocks could have
run in either order on the paper's work-stealing runtime — so conflicting
accesses from such epochs are races even when observed under the
deterministic simulator.
"""

from __future__ import annotations

import itertools
import threading
import weakref
from typing import TYPE_CHECKING, Iterable, Optional

from .vector_clock import VectorClock

if TYPE_CHECKING:  # pragma: no cover
    from ...core.component import ComponentCore, WorkItem
    from ...simulation.event_queue import ScheduledEntry


class _Context:
    """One totally-ordered strand of execution (a clock index owner)."""

    __slots__ = ("index", "name", "kind", "clock")

    def __init__(self, index: int, name: str, kind: str) -> None:
        self.index = index
        self.name = name
        self.kind = kind  # "component" | "thread" | "entry"
        self.clock = VectorClock()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ctx {self.kind} {self.name} #{self.index}>"


class Epoch:
    """One handler execution (or timed dispatch) and its clock snapshot."""

    __slots__ = ("number", "context_index", "label", "event_type", "clock")

    def __init__(
        self,
        number: int,
        context_index: int,
        label: str,
        event_type: str,
        clock: VectorClock,
    ) -> None:
        self.number = number
        self.context_index = context_index
        self.label = label          # component name / dispatch site
        self.event_type = event_type
        self.clock = clock          # immutable snapshot

    def __repr__(self) -> str:
        return f"<epoch #{self.number} {self.label}<-{self.event_type} {self.clock!r}>"


class HBTracker:
    """Maintains the happens-before order for one analysis run.

    Not installed anywhere by itself — :class:`~repro.analysis.race.hooks.
    RaceRuntime` wires its methods into the runtime's ``None``-checked
    hook points.  All state is behind one re-entrant lock so the tracker
    is usable under the work-stealing scheduler as well as the simulator.
    """

    def __init__(self, keep_epochs: bool = False) -> None:
        self._lock = threading.RLock()
        self._indices = itertools.count(1)
        self._epoch_numbers = itertools.count(1)
        self._components: dict[int, _Context] = {}   # id(core) -> ctx
        self._component_refs: dict[int, object] = {}  # keep cores alive (no id reuse)
        self._threads: dict[int, _Context] = {}      # thread ident -> ctx
        self._stamps: dict[int, VectorClock] = {}    # id(event) -> clock
        self._tls = threading.local()
        self.keep_epochs = keep_epochs
        self.epochs: list[Epoch] = []

    # ------------------------------------------------------------- contexts

    def _stack(self) -> list[tuple[_Context, Optional[Epoch]]]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _component_context(self, core: "ComponentCore") -> _Context:
        ctx = self._components.get(id(core))
        if ctx is None:
            ctx = _Context(next(self._indices), core.name, "component")
            self._components[id(core)] = ctx
            self._component_refs[id(core)] = core
        return ctx

    def _thread_context(self) -> _Context:
        ident = threading.get_ident()
        ctx = self._threads.get(ident)
        if ctx is None:
            name = threading.current_thread().name
            ctx = _Context(next(self._indices), f"thread:{name}", "thread")
            self._threads[ident] = ctx
        return ctx

    def current_context(self) -> _Context:
        stack = self._stack()
        if stack:
            return stack[-1][0]
        return self._thread_context()

    def current_epoch(self) -> Optional[Epoch]:
        stack = self._stack()
        return stack[-1][1] if stack else None

    def ambient_epoch(self, label: str = "driver") -> Epoch:
        """An epoch for an access made outside any handler execution.

        External-thread actions are in real program order, so the thread
        context ticks per access: successive driver accesses are ordered,
        and each is ordered relative to everything the driver observed.
        """
        with self._lock:
            ctx = self._thread_context()
            ctx.clock.tick(ctx.index)
            return self._new_epoch(ctx, ctx.name, label)

    def _new_epoch(self, ctx: _Context, label: str, event_type: str) -> Epoch:
        epoch = Epoch(
            next(self._epoch_numbers), ctx.index, label, event_type, ctx.clock.copy()
        )
        if self.keep_epochs:
            self.epochs.append(epoch)
        return epoch

    # ------------------------------------------------------- event stamping

    def _stamp_clock(self) -> VectorClock:
        ctx = self.current_context()
        if ctx.kind == "thread":
            # External threads have no epochs; tick per outward action so
            # the driver's sequential triggers/schedules stay ordered.
            ctx.clock.tick(ctx.index)
        return ctx.clock.copy()

    def _remember_stamp(self, obj: object, clock: VectorClock) -> None:
        key = id(obj)
        existing = self._stamps.get(key)
        if existing is not None:
            existing.join(clock)
            return
        self._stamps[key] = clock
        try:
            weakref.finalize(obj, self._stamps.pop, key, None)
        except TypeError:  # pragma: no cover - all Events are weakref-able
            pass

    def stamp_event(self, event: object) -> None:
        """``dispatch.trigger`` hook: the trigger→delivery edge."""
        with self._lock:
            self._remember_stamp(event, self._stamp_clock())

    def stamp_entry(self, entry: "ScheduledEntry") -> None:
        """``EventQueue.schedule`` hook: the schedule→dispatch edge."""
        with self._lock:
            entry.stamp = self._stamp_clock()

    # ----------------------------------------------------------- executions

    def begin_execution(self, core: "ComponentCore", item: "WorkItem") -> Epoch:
        with self._lock:
            ctx = self._component_context(core)
            stamp = self._stamps.get(id(item.event))
            if stamp is not None:
                ctx.clock.join(stamp)
            ctx.clock.tick(ctx.index)
            epoch = self._new_epoch(ctx, core.name, type(item.event).__name__)
        self._stack().append((ctx, epoch))
        return epoch

    def end_execution(self, core: "ComponentCore", item: "WorkItem") -> None:
        stack = self._stack()
        if stack:
            stack.pop()

    def run_entry(self, entry: "ScheduledEntry") -> None:
        """``Simulation.run`` hook: execute a timed dispatch in a fresh
        context seeded from its schedule-time stamp.

        A fresh context (not the loop thread's) means consecutive timed
        dispatches are concurrent unless a real edge orders them — the
        loop's serialization is an artifact the multi-core runtime would
        not reproduce.
        """
        action = getattr(entry.action, "__qualname__", None) or repr(entry.action)
        with self._lock:
            ctx = _Context(next(self._indices), f"dispatch@{entry.time:.6f}", "entry")
            stamp = entry.stamp
            if stamp is not None:
                ctx.clock.join(stamp)
            else:
                ctx.clock.join(self._thread_context().clock)
            ctx.clock.tick(ctx.index)
            epoch = self._new_epoch(ctx, ctx.name, action)
        stack = self._stack()
        stack.append((ctx, epoch))
        try:
            entry.action()
        finally:
            stack.pop()

    # --------------------------------------------------- reconfiguration ops

    def channel_op(self, op: str, channel: object, events: Iterable[object]) -> None:
        """Channel hook: hold/resume/release/unplug/plug edges.

        ``release`` (one event flushed by ``resume``) and ``plug`` (queued
        events that can now flow) join the commanding execution's clock
        into the affected events' stamps: their eventual delivery
        happens-after the command that let them through.
        """
        if op not in ("release", "plug"):
            return
        with self._lock:
            clock = self.current_context().clock.copy()
            for event in events:
                self._remember_stamp(event, clock.copy())

    def state_transfer(self, old_core: "ComponentCore", new_core: "ComponentCore") -> None:
        """Reconfig hook: old component's history precedes the new one's."""
        with self._lock:
            old_ctx = self._component_context(old_core)
            new_ctx = self._component_context(new_core)
            new_ctx.clock.join(old_ctx.clock)

    # -------------------------------------------------------------- queries

    def happens_before(self, first: Epoch, second: Epoch) -> bool:
        """True when ``first`` is ordered strictly before ``second``."""
        return first is not second and first.clock.leq(second.clock)

    def concurrent(self, first: Epoch, second: Epoch) -> bool:
        return first.clock.concurrent_with(second.clock)

    def epochs_of(
        self,
        label: Optional[str] = None,
        event_type: Optional[str] = None,
    ) -> list[Epoch]:
        """Recorded epochs filtered by component label / event type name
        (requires ``keep_epochs=True``)."""
        return [
            epoch
            for epoch in self.epochs
            if (label is None or epoch.label == label)
            and (event_type is None or epoch.event_type == event_type)
        ]
