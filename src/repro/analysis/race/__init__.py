"""Concurrency analysis for the component model: the second analysis pass.

Where the sanitizer (rules ``S0xx``) enforces single-component invariants
at the moment they break, this package checks the *cross-component* claims
of the paper — race-free execution (§2.1, §5) and fully reproducible
simulation (§3) — with three coordinated tools:

1. **Happens-before tracking** (:mod:`.hb`, :mod:`.recorder`, rule
   ``R001``) — vector clocks attached to every handler execution, with
   edges from trigger→delivery, channel hold/resume and plug/unplug,
   lifecycle Start/Stop, and reconfiguration state transfer; an
   object-access recorder reports conflicting accesses to the same
   non-event object that no happens-before edge orders.
2. **Determinism checking** (:mod:`.determinism`, rule ``R002``) — run a
   scenario twice with trace capture and diff the traces modulo
   happens-before commutativity, naming the first diverging event and a
   root-cause classification (wall-clock read, iteration-order, unseeded
   randomness).
3. **Schedule exploration** (:mod:`.explorer`, rule ``R003``) — permute
   same-timestamp event-queue entries and ready-component order under a
   seeded controller, shrink any failing interleaving to a minimal
   schedule, and emit a replay file that re-executes it exactly.

Command line: ``python -m repro.analysis race <scenario>`` with
``--determinism``, ``--explore N`` and ``--replay FILE`` modes.  All
runtime hooks are off by default and None-checked, exactly like the
sanitizer: production dispatch cost is unchanged
(``benchmarks/bench_race_overhead.py``).
"""

from .determinism import DeterminismReport, check_determinism, compare_traces
from .explorer import (
    ExplorationResult,
    ReplayResult,
    ScheduleController,
    explore,
    load_replay,
    replay,
    save_replay,
)
from .hb import Epoch, HBTracker
from .hooks import (
    RaceRuntime,
    active_runtime,
    note_read,
    note_write,
    race_tracking,
    track_object,
)
from .vector_clock import VectorClock

__all__ = [
    "DeterminismReport",
    "Epoch",
    "ExplorationResult",
    "HBTracker",
    "RaceRuntime",
    "ReplayResult",
    "ScheduleController",
    "VectorClock",
    "active_runtime",
    "check_determinism",
    "compare_traces",
    "explore",
    "load_replay",
    "note_read",
    "note_write",
    "race_tracking",
    "replay",
    "save_replay",
    "track_object",
]
