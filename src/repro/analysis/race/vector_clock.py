"""Vector clocks: the partial order underlying happens-before tracking.

A clock maps context indices (components, external threads, timed
dispatches) to event counts.  ``a.leq(b)`` means every execution counted
in ``a`` is also counted in ``b`` — i.e. ``a`` happened before (or is)
``b``; two clocks with neither ≤ the other are *concurrent*, and that is
exactly where races live.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Optional


class VectorClock:
    """A sparse vector clock over integer context indices."""

    __slots__ = ("_c",)

    def __init__(self, entries: Optional[Mapping[int, int]] = None) -> None:
        self._c: dict[int, int] = dict(entries) if entries else {}

    def copy(self) -> "VectorClock":
        clock = VectorClock()
        clock._c = dict(self._c)
        return clock

    def tick(self, index: int) -> None:
        """Count one more event in context ``index``."""
        self._c[index] = self._c.get(index, 0) + 1

    def join(self, other: "VectorClock") -> None:
        """In-place component-wise maximum (inherit ``other``'s history)."""
        mine = self._c
        for index, count in other._c.items():
            if count > mine.get(index, 0):
                mine[index] = count

    def get(self, index: int) -> int:
        return self._c.get(index, 0)

    def leq(self, other: "VectorClock") -> bool:
        """True when this clock's history is contained in ``other``'s."""
        theirs = other._c
        return all(count <= theirs.get(index, 0) for index, count in self._c.items())

    def concurrent_with(self, other: "VectorClock") -> bool:
        """Neither clock precedes the other: the epochs are unordered."""
        return not self.leq(other) and not other.leq(self)

    def as_dict(self) -> dict[int, int]:
        return dict(self._c)

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return iter(self._c.items())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return self._c == other._c

    def __hash__(self) -> int:
        return hash(frozenset(self._c.items()))

    def __repr__(self) -> str:
        inside = ", ".join(f"{i}:{n}" for i, n in sorted(self._c.items()))
        return f"<VC {{{inside}}}>"
