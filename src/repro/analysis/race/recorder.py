"""Object-access recording and R001 race detection.

The recorder watches *non-event* mutable objects — event payloads
(lists, dicts, sets carried inside events) and explicitly registered
shared state — and checks every access against the happens-before order
maintained by :class:`~repro.analysis.race.hb.HBTracker`.

Detection is FastTrack-flavoured: per object, per context (component /
thread / timed dispatch), keep the last read and last write with their
epoch clocks.  A new access conflicts with a stored access from another
context when at least one of the two is a write and the stored access's
clock is not ≤ the current epoch's clock — no chain of trigger/channel/
lifecycle/transfer edges orders them, so on the multi-core runtime they
could interleave: rule **R001**.

Two ways an access is observed:

- *payload diffing* — every event's mutable payload attributes are
  fingerprinted before and after each handler execution that receives
  the event; a changed fingerprint is a write by that epoch, an
  unchanged one a read (the handler held a reference either way).
- *explicit notes* — ``note_read(obj)`` / ``note_write(obj)`` from
  instrumented code record an access with a captured stack.
"""

from __future__ import annotations

import dataclasses
import reprlib
import traceback
from typing import TYPE_CHECKING, Optional

from ..findings import Finding
from .hb import Epoch, HBTracker

if TYPE_CHECKING:  # pragma: no cover
    from ...core.component import ComponentCore, WorkItem

#: Container types whose identity is shared by reference through events.
_TRACKED_TYPES = (list, dict, set, bytearray)

_short_repr = reprlib.Repr()
_short_repr.maxstring = 60
_short_repr.maxother = 60


class _Access:
    """One recorded access to a tracked object."""

    __slots__ = ("kind", "clock", "site", "stack", "epoch_number")

    def __init__(
        self,
        kind: str,
        epoch: Epoch,
        site: str,
        stack: Optional[list[str]],
    ) -> None:
        self.kind = kind  # "read" | "write"
        self.clock = epoch.clock
        self.site = site
        self.stack = stack
        self.epoch_number = epoch.number

    def describe(self) -> str:
        return f"{self.kind} at {self.site} (epoch #{self.epoch_number}, clock {self.clock!r})"


class _ObjectState:
    """Per-tracked-object access history: last read/write per context."""

    __slots__ = ("name", "by_context")

    def __init__(self, name: str) -> None:
        self.name = name
        self.by_context: dict[int, dict[str, _Access]] = {}


class AccessRecorder:
    """Records object accesses and reports unordered conflicts (R001)."""

    def __init__(self, tracker: HBTracker, capture_stacks: bool = True) -> None:
        self.tracker = tracker
        self.capture_stacks = capture_stacks
        self.findings: list[Finding] = []
        self._objects: dict[int, _ObjectState] = {}
        self._refs: dict[int, object] = {}  # strong refs: ids stay unique
        self._event_payloads: dict[int, tuple[tuple[str, object], ...]] = {}
        self._globals: list[tuple[str, object]] = []  # track_object registrations
        self._reported: set[tuple] = set()

    # ----------------------------------------------------------- registration

    def _state_for(self, obj: object, name: str) -> _ObjectState:
        state = self._objects.get(id(obj))
        if state is None:
            state = _ObjectState(name)
            self._objects[id(obj)] = state
            self._refs[id(obj)] = obj
        return state

    def track_object(self, obj: object, name: Optional[str] = None) -> None:
        """Explicitly watch ``obj``: probed around every handler execution."""
        label = name or f"{type(obj).__name__}@{id(obj):#x}"
        self._state_for(obj, label)
        if not any(existing is obj for _, existing in self._globals):
            self._globals.append((label, obj))

    def register_event(self, event: object) -> None:
        """Auto-track the mutable payload attributes of a triggered event.

        Payload identity is what matters: the same list inside two events
        (or fanned out to two subscribers) is one shared object.
        """
        key = id(event)
        if key in self._event_payloads:
            return
        payloads: list[tuple[str, object]] = []
        attrs = getattr(event, "__dict__", None)
        if attrs:
            items = list(attrs.items())
        elif dataclasses.is_dataclass(event):
            # Hot events are slotted frozen dataclasses (no __dict__):
            # probe their declared fields instead.
            items = [
                (f.name, getattr(event, f.name)) for f in dataclasses.fields(event)
            ]
        else:
            items = []
        if items:
            type_name = type(event).__name__
            for attr, value in items:
                for name, obj in self._walk_payload(f"{type_name}.{attr}", value):
                    payloads.append((name, obj))
                    self._state_for(obj, name)
        self._event_payloads[key] = tuple(payloads)
        if payloads:
            self._refs[key] = event  # keep the id stable while tracked

    @staticmethod
    def _walk_payload(name: str, value: object) -> list[tuple[str, object]]:
        if isinstance(value, _TRACKED_TYPES):
            return [(name, value)]
        if isinstance(value, tuple):  # one level: common (payload, meta) shapes
            return [
                (f"{name}[{i}]", item)
                for i, item in enumerate(value)
                if isinstance(item, _TRACKED_TYPES)
            ]
        return []

    # ------------------------------------------------------ execution probing

    @staticmethod
    def _probe(obj: object) -> int:
        """A cheap content fingerprint; changed fingerprint ⇒ write."""
        try:
            return hash(repr(obj))
        except Exception:  # pragma: no cover - exotic __repr__
            return 0

    def begin(self, core: "ComponentCore", item: "WorkItem") -> list[tuple[str, object, int]]:
        """Snapshot the tracked objects this execution can reach."""
        watched = list(self._event_payloads.get(id(item.event), ()))
        watched.extend(self._globals)
        seen: set[int] = set()
        snapshot = []
        for name, obj in watched:
            if id(obj) in seen:
                continue
            seen.add(id(obj))
            snapshot.append((name, obj, self._probe(obj)))
        return snapshot

    def end(
        self,
        core: "ComponentCore",
        item: "WorkItem",
        epoch: Epoch,
        snapshot: list[tuple[str, object, int]],
    ) -> None:
        """Re-probe and record each touched object as read or written."""
        if not snapshot:
            return
        site = self._execution_site(core, item)
        for name, obj, before in snapshot:
            kind = "write" if self._probe(obj) != before else "read"
            self._access(obj, name, kind, epoch, site, stack=None)

    @staticmethod
    def _execution_site(core: "ComponentCore", item: "WorkItem") -> str:
        try:
            handlers = ", ".join(
                getattr(fn, "__qualname__", repr(fn))
                for fn in core._match_handlers(item)
            )
        except Exception:  # pragma: no cover - defensive
            handlers = ""
        site = f"{core.name} <- {type(item.event).__name__}"
        return f"{site} (handlers: {handlers})" if handlers else site

    # -------------------------------------------------------- explicit access

    def explicit_access(self, obj: object, kind: str, name: Optional[str]) -> None:
        epoch = self.tracker.current_epoch()
        if epoch is None:
            epoch = self.tracker.ambient_epoch(f"{kind} of {name or type(obj).__name__}")
        state = self._objects.get(id(obj))
        label = name or (state.name if state is not None else None)
        label = label or f"{type(obj).__name__}@{id(obj):#x}"
        stack = None
        if self.capture_stacks:
            raw = traceback.extract_stack()[:-2]  # drop recorder/hooks frames
            stack = traceback.format_list(raw[-6:])
        self._access(obj, label, kind, epoch, f"{epoch.label} <- {epoch.event_type}", stack)

    # ------------------------------------------------------------- core check

    def _access(
        self,
        obj: object,
        name: str,
        kind: str,
        epoch: Epoch,
        site: str,
        stack: Optional[list[str]],
    ) -> None:
        state = self._state_for(obj, name)
        access = _Access(kind, epoch, site, stack)
        for context_index, slots in state.by_context.items():
            if context_index == epoch.context_index:
                continue  # program order covers same-context accesses
            for prev_kind in ("write",) if kind == "read" else ("write", "read"):
                prev = slots.get(prev_kind)
                if prev is not None and not prev.clock.leq(epoch.clock):
                    self._report(obj, state, prev, access)
        state.by_context.setdefault(epoch.context_index, {})[kind] = access

    def _report(self, obj: object, state: _ObjectState, prev: _Access, cur: _Access) -> None:
        key = (state.name, prev.site, cur.site, prev.kind, cur.kind)
        if key in self._reported:
            return
        self._reported.add(key)
        self.findings.append(
            Finding(
                rule="R001",
                message=(
                    f"unordered conflicting accesses to {state.name} "
                    f"(current value {_short_repr.repr(obj)}): "
                    f"{prev.describe()} and {cur.describe()} are concurrent — "
                    f"no trigger/channel/lifecycle/transfer edge orders them, "
                    f"so the multi-core runtime may interleave these handlers"
                ),
                obj=state.name,
                extra={
                    "object": state.name,
                    "first": {
                        "kind": prev.kind,
                        "site": prev.site,
                        "epoch": prev.epoch_number,
                        "clock": dict(prev.clock.as_dict()),
                        "stack": prev.stack,
                    },
                    "second": {
                        "kind": cur.kind,
                        "site": cur.site,
                        "epoch": cur.epoch_number,
                        "clock": dict(cur.clock.as_dict()),
                        "stack": cur.stack,
                    },
                    "missing_edge": (
                        f"need happens-before between '{prev.site}' and "
                        f"'{cur.site}' (e.g. an event between the two "
                        f"components, a channel hold/resume fence, or "
                        f"sequencing both accesses into one component)"
                    ),
                },
            )
        )
