"""Schedule exploration: permute legal interleavings, shrink, replay (R003).

The simulation runtime normally resolves scheduling ties FIFO: queue
entries at one virtual timestamp dispatch in insertion order and ready
components execute in arrival order.  Those ties are exactly the points
where the multi-core runtime is *allowed* to differ — so the explorer
drives them through a :class:`ScheduleController` plugged into the
``picker`` hooks of :class:`~repro.simulation.event_queue.EventQueue` and
:class:`~repro.runtime.scheduler.ManualScheduler`, searching for an
interleaving that breaks the scenario.

Every controller decision is an index into the tied candidates, recorded
in order.  A failing run is therefore *a list of small integers*, which

- **shrinks**: first the shortest failing prefix (everything after it
  falls back to FIFO), then each remaining non-zero decision is forced
  back to 0 where the failure survives — the minimal schedule is usually
  one or two decisive swaps;
- **replays**: the decision list plus scenario/seed round-trips through a
  JSON replay file, and ``python -m repro.analysis race --replay FILE``
  re-executes the exact interleaving.

A baseline FIFO failure means the bug is not schedule-dependent (fix the
scenario, not the schedule); it is reported separately.
"""

from __future__ import annotations

import json
import random
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

from ...simulation.core import Simulation
from ..findings import Finding
from .determinism import Scenario


class ScheduleController:
    """Resolves scheduling ties: randomly (search) or by script (replay).

    With neither ``rng`` nor ``script`` the controller picks index 0
    everywhere, which is exactly the FIFO baseline.  Decisions are only
    consulted — and recorded — when more than one candidate is tied.
    """

    def __init__(
        self,
        rng: Optional[random.Random] = None,
        script: Optional[Sequence[int]] = None,
    ) -> None:
        self.rng = rng
        self.script: Optional[deque[int]] = (
            deque(int(d) for d in script) if script is not None else None
        )
        self.decisions: list[int] = []
        self.sites: list[str] = []

    def _choose(self, count: int, site: str) -> int:
        if count <= 1:
            return 0
        if self.script is not None:
            choice = self.script.popleft() if self.script else 0
            choice = max(0, min(choice, count - 1))
        elif self.rng is not None:
            choice = self.rng.randrange(count)
        else:
            choice = 0
        self.decisions.append(choice)
        self.sites.append(f"{site} [{count} tied]")
        return choice

    def queue_picker(self, entries) -> int:
        names = ", ".join(
            getattr(e.action, "__qualname__", None) or repr(e.action) for e in entries
        )
        return self._choose(len(entries), f"t={entries[0].time:.6f} queue({names})")

    def ready_picker(self, ready) -> int:
        names = ", ".join(core.name for core in ready)
        return self._choose(len(ready), f"ready({names})")

    def install(self, sim: Simulation) -> None:
        sim.queue.picker = self.queue_picker
        sim.scheduler.picker = self.ready_picker


def _attempt(
    scenario: Scenario,
    scenario_seed: int,
    until: Optional[float],
    max_dispatches: Optional[int],
    controller: Optional[ScheduleController],
) -> Optional[str]:
    """One run under ``controller``; returns a failure string or None."""
    sim = Simulation(seed=scenario_seed)
    if controller is not None:
        controller.install(sim)
    try:
        check = scenario(sim)
        sim.run(until=until, max_dispatches=max_dispatches)
        if check is not None:
            check()
    except Exception as exc:  # noqa: BLE001 - any failure is the signal
        return f"{type(exc).__name__}: {exc}"
    return None


@dataclass
class ExplorationResult:
    """Outcome of :func:`explore`."""

    found: bool
    baseline_failed: bool
    attempts: int
    runs: int
    failure: Optional[str]
    decisions: list[int] = field(default_factory=list)
    sites: list[str] = field(default_factory=list)
    replay: Optional[dict] = None
    findings: list[Finding] = field(default_factory=list)

    def format(self) -> str:
        if self.baseline_failed:
            return (
                f"baseline FIFO schedule already fails ({self.failure}); the bug "
                f"is not schedule-dependent — fix the scenario first"
            )
        if not self.found:
            return (
                f"no schedule-dependent failure in {self.attempts} explored "
                f"schedules ({self.runs} runs total)"
            )
        lines = [
            f"schedule-dependent failure after {self.attempts} attempts "
            f"({self.runs} runs incl. shrinking): {self.failure}",
            f"minimal schedule: {len(self.decisions)} decision(s)",
        ]
        for decision, site in zip(self.decisions, self.sites):
            lines.append(f"  pick #{decision} at {site}")
        return "\n".join(lines)


def _shrink(
    scenario: Scenario,
    decisions: list[int],
    scenario_seed: int,
    until: Optional[float],
    max_dispatches: Optional[int],
    budget: int,
) -> tuple[list[int], list[str], Optional[str], int]:
    """Minimize a failing decision list; returns (decisions, sites, failure, runs)."""
    runs = 0

    def run_script(script: list[int]) -> tuple[Optional[str], ScheduleController]:
        nonlocal runs
        runs += 1
        controller = ScheduleController(script=script)
        return (
            _attempt(scenario, scenario_seed, until, max_dispatches, controller),
            controller,
        )

    best = list(decisions)
    while best and best[-1] == 0:  # trailing zeros are the FIFO default
        best.pop()

    # Shortest failing prefix (binary search; verified afterwards because
    # failure need not be monotone in prefix length).
    low, high = 0, len(best)
    while low < high and runs < budget:
        mid = (low + high) // 2
        if run_script(best[:mid])[0] is not None:
            high = mid
        else:
            low = mid + 1
    candidate = best[:high]
    if candidate != best and run_script(candidate)[0] is not None:
        best = candidate

    # Force surviving decisions back to the FIFO choice where possible.
    changed = True
    while changed and runs < budget:
        changed = False
        for position in range(len(best)):
            if best[position] == 0 or runs >= budget:
                continue
            trial = list(best)
            trial[position] = 0
            if run_script(trial)[0] is not None:
                best = trial
                changed = True
        while best and best[-1] == 0:
            best.pop()

    failure, controller = run_script(list(best))
    if failure is None:  # shrinking lost the bug — keep the original schedule
        best = list(decisions)
        failure, controller = run_script(best)
    return best, controller.sites, failure, runs


def explore(
    scenario: Scenario,
    budget: int,
    seed: int = 0,
    until: Optional[float] = None,
    scenario_seed: int = 0,
    max_dispatches: Optional[int] = None,
    scenario_spec: Optional[str] = None,
    shrink_budget: int = 200,
) -> ExplorationResult:
    """Search up to ``budget`` random schedules for a failing interleaving."""
    runs = 1
    baseline = _attempt(scenario, scenario_seed, until, max_dispatches, None)
    if baseline is not None:
        return ExplorationResult(
            found=False,
            baseline_failed=True,
            attempts=0,
            runs=runs,
            failure=baseline,
        )
    for attempt in range(budget):
        controller = ScheduleController(rng=random.Random(seed * 1_000_003 + attempt))
        failure = _attempt(scenario, scenario_seed, until, max_dispatches, controller)
        runs += 1
        if failure is None:
            continue
        decisions, sites, failure, shrink_runs = _shrink(
            scenario,
            controller.decisions,
            scenario_seed,
            until,
            max_dispatches,
            shrink_budget,
        )
        runs += shrink_runs
        replay_data = {
            "version": 1,
            "kind": "repro.analysis.race replay",
            "scenario": scenario_spec,
            "scenario_seed": scenario_seed,
            "until": until,
            "max_dispatches": max_dispatches,
            "decisions": decisions,
            "sites": sites,
            "failure": failure,
        }
        finding = Finding(
            rule="R003",
            message=(
                f"schedule-dependent failure: {failure} — reproduced by "
                f"{len(decisions)} scheduling decision(s) "
                f"({'; '.join(sites) or 'FIFO'}); the FIFO baseline passes"
            ),
            obj=scenario_spec or "scenario",
            extra={"decisions": decisions, "sites": sites, "failure": failure},
        )
        return ExplorationResult(
            found=True,
            baseline_failed=False,
            attempts=attempt + 1,
            runs=runs,
            failure=failure,
            decisions=decisions,
            sites=sites,
            replay=replay_data,
            findings=[finding],
        )
    return ExplorationResult(
        found=False, baseline_failed=False, attempts=budget, runs=runs, failure=None
    )


# ------------------------------------------------------------------ replay io


def save_replay(path: Union[str, Path], result: Union[ExplorationResult, dict]) -> Path:
    """Write a replay file for a failing exploration result."""
    data = result.replay if isinstance(result, ExplorationResult) else result
    if not data:
        raise ValueError("nothing to save: the exploration found no failure")
    path = Path(path)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path


def load_replay(path: Union[str, Path]) -> dict:
    data = json.loads(Path(path).read_text())
    if data.get("kind") != "repro.analysis.race replay":
        raise ValueError(f"{path} is not a race replay file")
    return data


@dataclass
class ReplayResult:
    """Outcome of :func:`replay`."""

    reproduced: bool
    failure: Optional[str]
    expected_failure: Optional[str]
    decisions: list[int] = field(default_factory=list)
    sites: list[str] = field(default_factory=list)

    def format(self) -> str:
        if self.reproduced:
            return f"replay reproduced the failure: {self.failure}"
        if self.failure is not None:
            return (
                f"replay failed differently: got {self.failure!r}, "
                f"recorded {self.expected_failure!r}"
            )
        return f"replay did NOT reproduce the recorded failure ({self.expected_failure})"


def replay(
    source: Union[str, Path, dict],
    scenario: Optional[Scenario] = None,
) -> ReplayResult:
    """Re-execute the exact interleaving recorded in a replay file."""
    data = source if isinstance(source, dict) else load_replay(source)
    if scenario is None:
        spec = data.get("scenario")
        if not spec:
            raise ValueError(
                "replay file does not name its scenario; pass one explicitly"
            )
        from .fixtures import resolve_scenario

        scenario = resolve_scenario(spec)
    controller = ScheduleController(script=data.get("decisions", []))
    failure = _attempt(
        scenario,
        int(data.get("scenario_seed", 0)),
        data.get("until"),
        data.get("max_dispatches"),
        controller,
    )
    expected = data.get("failure")
    return ReplayResult(
        reproduced=failure is not None and (expected is None or failure == expected),
        failure=failure,
        expected_failure=expected,
        decisions=controller.decisions,
        sites=controller.sites,
    )
