"""RaceRuntime: installs HB tracking into the runtime's hook points.

Mirrors the sanitizer's activation contract exactly: every hook site in
the core runtime is a module-level name that is ``None`` by default and
checked before use, so production dispatch pays one pointer test per
site and nothing else (``benchmarks/bench_race_overhead.py`` keeps this
honest).  Only one runtime can be installed at a time.

Typical use::

    from repro.analysis.race import race_tracking

    with race_tracking() as rt:
        sim = Simulation(seed=7)
        ... build and run ...
    for finding in rt.findings():
        print(finding.format())

Instrumented application code may add explicit accesses::

    from repro.analysis.race import note_read, note_write, track_object

    track_object(self.cache, "Server.cache")   # no-op when tracking is off
    note_write(self.cache)
"""

from __future__ import annotations

import contextlib
import threading
from typing import TYPE_CHECKING, Iterator, Optional

from ...core import channel as _channel_mod
from ...core import component as _component_mod
from ...core import dispatch as _dispatch_mod
from ...core import reconfig as _reconfig_mod
from ...simulation import core as _sim_core_mod
from ...simulation import event_queue as _event_queue_mod
from ..findings import Finding
from .hb import HBTracker
from .recorder import AccessRecorder

if TYPE_CHECKING:  # pragma: no cover
    from ...core.component import ComponentCore, WorkItem

_install_lock = threading.Lock()
_active: Optional["RaceRuntime"] = None


class RaceRuntime:
    """One race-analysis session: tracker + recorder + hook plumbing."""

    def __init__(self, keep_epochs: bool = False, capture_stacks: bool = True) -> None:
        self.tracker = HBTracker(keep_epochs=keep_epochs)
        self.recorder = AccessRecorder(self.tracker, capture_stacks=capture_stacks)
        self._tls = threading.local()
        self.installed = False

    # ------------------------------------------------------- hook callbacks

    def on_trigger(self, event: object) -> None:
        self.tracker.stamp_event(event)
        self.recorder.register_event(event)

    def begin(self, core: "ComponentCore", item: "WorkItem") -> None:
        epoch = self.tracker.begin_execution(core, item)
        snapshot = self.recorder.begin(core, item)
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        stack.append((epoch, snapshot))

    def end(self, core: "ComponentCore", item: "WorkItem") -> None:
        stack = getattr(self._tls, "stack", None)
        if stack:
            epoch, snapshot = stack.pop()
            self.recorder.end(core, item, epoch, snapshot)
        self.tracker.end_execution(core, item)

    # --------------------------------------------------------- installation

    def install(self) -> None:
        global _active
        with _install_lock:
            if self.installed:
                return
            if _active is not None:
                raise RuntimeError("another RaceRuntime is already installed")
            _active = self
            self.installed = True
            _dispatch_mod._race_stamp = self.on_trigger
            _component_mod._race_observer = self
            _channel_mod._race_channel = self.tracker.channel_op
            _reconfig_mod._race_transfer = self.tracker.state_transfer
            _event_queue_mod._race_stamp_entry = self.tracker.stamp_entry
            _sim_core_mod._race_dispatch_entry = self.tracker.run_entry

    def uninstall(self) -> None:
        global _active
        with _install_lock:
            if not self.installed:
                return
            self.installed = False
            if _active is self:
                _active = None
            _dispatch_mod._race_stamp = None
            _component_mod._race_observer = None
            _channel_mod._race_channel = None
            _reconfig_mod._race_transfer = None
            _event_queue_mod._race_stamp_entry = None
            _sim_core_mod._race_dispatch_entry = None

    # -------------------------------------------------------------- results

    def findings(self) -> list[Finding]:
        return list(self.recorder.findings)


def active_runtime() -> Optional[RaceRuntime]:
    """The currently installed runtime, or None when tracking is off."""
    return _active


@contextlib.contextmanager
def race_tracking(
    keep_epochs: bool = False, capture_stacks: bool = True
) -> Iterator[RaceRuntime]:
    """Enable race tracking for a ``with`` block; always uninstalls."""
    runtime = RaceRuntime(keep_epochs=keep_epochs, capture_stacks=capture_stacks)
    runtime.install()
    try:
        yield runtime
    finally:
        runtime.uninstall()


def track_object(obj: object, name: Optional[str] = None) -> None:
    """Watch ``obj`` for unordered conflicting accesses (no-op when off)."""
    runtime = _active
    if runtime is not None:
        runtime.recorder.track_object(obj, name)


def note_read(obj: object, name: Optional[str] = None) -> None:
    """Record a read of ``obj`` by the current execution (no-op when off)."""
    runtime = _active
    if runtime is not None:
        runtime.recorder.explicit_access(obj, "read", name)


def note_write(obj: object, name: Optional[str] = None) -> None:
    """Record a write of ``obj`` by the current execution (no-op when off)."""
    runtime = _active
    if runtime is not None:
        runtime.recorder.explicit_access(obj, "write", name)
