"""Wiring verifier: structural checks on an assembled component tree.

Run this *after* construction and *before* (or instead of) starting the
system — typically on a tree built under a
:class:`~repro.runtime.scheduler.ManualScheduler` so nothing executes::

    system = ComponentSystem(scheduler=ManualScheduler())
    root = system.bootstrap(Main)          # construction only; Start queued
    findings = verify_system(system)

Checks (rule ids in :mod:`repro.analysis.findings`):

- **W001** required ports with no channel on their outside face;
- **W002** subscriptions no trigger site can reach through the channel
  graph — the reachability walk mirrors the propagation geometry of
  :func:`repro.core.dispatch.arrive` and the conservative treatment of
  held/unplugged channels in
  :func:`repro.core.dispatch.leads_to_subscriber`;
- **W003** duplicate subscriptions (same handler, face, event type);
- **W004** channel anomalies (duplicate parallel channels, held channels,
  unplugged ends).

Like the channel-pruning optimization, W002 is port-type-level and
selector-agnostic: a selector that filters everything out is *not*
reported, and a component that never actually triggers a declared event
still counts as a potential emitter.  Trigger sites are (a) the inside
face of every non-control port (its owner may emit there) and (b) the
channel-free outside face of every provided port (an external driver may
push requests there, as the CATS simulator's Experiment port is driven).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional, Union

from ..core.component import Component, ComponentCore
from ..core.event import Direction, Event
from ..core.port import Port, PortFace
from .config import AnalysisConfig
from .findings import Finding

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.system import ComponentSystem

Root = Union[Component, ComponentCore, "ComponentSystem"]


def verify_system(system: "ComponentSystem", config: Optional[AnalysisConfig] = None,
                  allow: Iterable[str] = ()) -> list[Finding]:
    """Verify every root hierarchy registered in ``system``."""
    findings: list[Finding] = []
    for root in system.roots:
        findings.extend(verify_tree(root, config, allow))
    return findings


def verify_tree(root: Root, config: Optional[AnalysisConfig] = None,
                allow: Iterable[str] = ()) -> list[Finding]:
    """Verify the component tree under ``root``.

    ``allow`` holds ``"RULE:glob"`` entries matched (fnmatch) against each
    finding's object path — the wiring analogue of a noqa comment, e.g.
    ``"W001:*ClientApp*"``.
    """
    import fnmatch

    config = config or AnalysisConfig()
    core = root if isinstance(root, ComponentCore) else root.core
    cores = list(_walk(core))
    findings: list[Finding] = []
    if config.rule_enabled("W001"):
        findings.extend(_check_required_ports(cores))
    if config.rule_enabled("W002"):
        flagged = {f.extra.get("port_id") for f in findings if f.rule == "W001"}
        findings.extend(_check_dead_subscriptions(cores, flagged))
    if config.rule_enabled("W003"):
        findings.extend(_check_duplicate_subscriptions(cores))
    if config.rule_enabled("W004"):
        findings.extend(_check_channels(cores))
    allow = tuple(allow)
    if allow:
        def allowed(finding: Finding) -> bool:
            for entry in allow:
                rule, _, pattern = entry.partition(":")
                if finding.rule == rule and fnmatch.fnmatch(
                    finding.obj or "", pattern or "*"
                ):
                    return True
            return False

        findings = [f for f in findings if not allowed(f)]
    findings.sort(key=lambda f: (f.obj or "", f.rule))
    return findings


# ------------------------------------------------------------------- helpers


def _walk(core: ComponentCore):
    yield core
    for child in core.children:
        yield from _walk(child)


def _path(core: ComponentCore) -> str:
    parts = []
    current: Optional[ComponentCore] = core
    while current is not None:
        parts.append(current.name)
        current = current.parent
    return "/".join(reversed(parts))


def _port_label(port: Port) -> str:
    kind = "provided" if port.is_provided else "required"
    return f"{_path(port.owner)}.{port.port_type.__name__}[{kind}]"


def _tree_ports(cores: list[ComponentCore]) -> list[Port]:
    ports: list[Port] = []
    for core in cores:
        ports.extend(core.ports.values())
    return ports


# ---------------------------------------------------------------------- W001


def _check_required_ports(cores: list[ComponentCore]) -> list[Finding]:
    findings = []
    for port in _tree_ports(cores):
        if port.is_provided or port.is_control:
            continue
        if not port.outside.channels:
            findings.append(
                Finding(
                    rule="W001",
                    message=(
                        f"required {port.port_type.__name__} port of "
                        f"{port.owner.name} has no channel: nothing provides "
                        f"the service"
                    ),
                    obj=_port_label(port),
                    extra={"port_id": port.id},
                )
            )
    return findings


# ---------------------------------------------------------------------- W002


def _reachable_faces(start: PortFace, direction: Direction) -> frozenset[int]:
    """Face ids an event emitted at ``start`` with ``direction`` is delivered to.

    Mirrors :func:`repro.core.dispatch.arrive`: deliver where the direction
    matches the face's incoming side, cross component boundaries, forward
    along channels.  Held channels forward (queued events are delivered on
    resume — same conservatism as ``leads_to_subscriber``); unplugged ends
    stop the walk (the queued events have no destination *in this tree*).
    """
    seen: set[int] = set()
    delivered: set[int] = set()
    stack = [start]
    while stack:
        face = stack.pop()
        if id(face) in seen:
            continue
        seen.add(id(face))
        if direction is face.incoming:
            delivered.add(id(face))
        port = face.port
        inward = direction is port.boundary_inward
        if not face.is_inside:
            if inward:
                stack.append(port.inside)
                continue
        else:
            if not inward:
                stack.append(port.outside)
                continue
        for channel in face.channels:
            if channel.destroyed:
                continue
            other = channel.other_end(face)
            if other is not None:
                stack.append(other)
    return frozenset(delivered)


def _could_carry(port_type, direction: Direction, event_type: type[Event]) -> bool:
    declared = (
        port_type.positive if direction is Direction.POSITIVE else port_type.negative
    )
    return any(
        issubclass(event_type, allowed) or issubclass(allowed, event_type)
        for allowed in declared
    )


def _trigger_sites(cores: list[ComponentCore]) -> list[tuple[PortFace, Direction]]:
    sites: list[tuple[PortFace, Direction]] = []
    for port in _tree_ports(cores):
        if port.is_control:
            continue
        # The owner may emit on the inside face.
        sites.append((port.inside, port.inside.incoming.opposite))
        # A driver may push requests into a free provided outside face.
        if port.is_provided and not port.outside.channels:
            sites.append((port.outside, port.boundary_inward))
    return sites


def _check_dead_subscriptions(
    cores: list[ComponentCore], skip_port_ids: set
) -> list[Finding]:
    findings = []
    sites = _trigger_sites(cores)
    reach_cache: dict[tuple[int, Direction], frozenset[int]] = {}
    for port in _tree_ports(cores):
        if port.is_control or port.id in skip_port_ids:
            continue
        for face in (port.inside, port.outside):
            for subscription in face.subscriptions:
                live = False
                for site_face, direction in sites:
                    if direction is not face.incoming:
                        continue
                    if not _could_carry(
                        site_face.port_type, direction, subscription.event_type
                    ):
                        continue
                    key = (id(site_face), direction)
                    reachable = reach_cache.get(key)
                    if reachable is None:
                        reachable = _reachable_faces(site_face, direction)
                        reach_cache[key] = reachable
                    if id(face) in reachable:
                        live = True
                        break
                if not live:
                    handler = getattr(
                        subscription.handler, "__name__", repr(subscription.handler)
                    )
                    findings.append(
                        Finding(
                            rule="W002",
                            message=(
                                f"subscription of {subscription.owner.name}."
                                f"{handler} for "
                                f"{subscription.event_type.__name__} is dead: "
                                f"no trigger site reaches this face"
                            ),
                            obj=_port_label(port),
                        )
                    )
    return findings


# ---------------------------------------------------------------------- W003


def _check_duplicate_subscriptions(cores: list[ComponentCore]) -> list[Finding]:
    findings = []
    for core in cores:
        for port in (core.control_port, *core.ports.values()):
            for face in (port.inside, port.outside):
                seen: dict[tuple, int] = {}
                for subscription in face.subscriptions:
                    handler = subscription.handler
                    key = (
                        id(subscription.owner),
                        getattr(handler, "__func__", handler),
                        subscription.event_type,
                    )
                    seen[key] = seen.get(key, 0) + 1
                for (owner_id, handler, event_type), count in seen.items():
                    if count > 1:
                        name = getattr(handler, "__name__", repr(handler))
                        findings.append(
                            Finding(
                                rule="W003",
                                message=(
                                    f"{name} subscribed {count}x for "
                                    f"{event_type.__name__} at the same face: "
                                    f"each event runs it {count} times"
                                ),
                                obj=_port_label(port),
                            )
                        )
    return findings


# ---------------------------------------------------------------------- W004


def _check_channels(cores: list[ComponentCore]) -> list[Finding]:
    findings = []
    channels: dict[int, object] = {}
    for port in _tree_ports(cores):
        for face in (port.inside, port.outside):
            for channel in face.channels:
                channels[id(channel)] = channel
    pairs: dict[tuple[int, int], int] = {}
    for channel in channels.values():
        label = f"channel[{channel.port_type.__name__}]"
        pos, neg = channel.positive_end, channel.negative_end
        if pos is None or neg is None:
            missing = "positive" if pos is None else "negative"
            attached = pos or neg
            findings.append(
                Finding(
                    rule="W004",
                    message=(
                        f"channel has an unplugged {missing} end: events "
                        f"toward it queue forever unless plugged"
                    ),
                    obj=f"{_port_label(attached.port)}.{label}",
                )
            )
            continue
        if channel.held:
            findings.append(
                Finding(
                    rule="W004",
                    message="channel is held at verification time: events queue "
                            "until resume() is called",
                    obj=f"{_port_label(pos.port)}.{label}",
                )
            )
        if channel.selector is None:
            key = (id(pos), id(neg))
            pairs[key] = pairs.get(key, 0) + 1
            if pairs[key] == 2:  # report once per duplicated pair
                findings.append(
                    Finding(
                        rule="W004",
                        message=(
                            f"duplicate parallel channels (no selector) between "
                            f"{_port_label(pos.port)} and {_port_label(neg.port)}: "
                            f"events are delivered twice"
                        ),
                        obj=f"{_port_label(pos.port)}.{label}",
                    )
                )
    return findings
