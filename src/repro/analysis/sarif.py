"""SARIF 2.1.0 export for every analysis pass (families A/W/S/R/F/C/D).

One run object, one tool driver, the full rule catalogue in
``tool.driver.rules`` (so ``ruleIndex`` resolves even for families the
current invocation did not exercise), one result per finding.  File-based
findings become ``physicalLocation`` records; wiring findings — anchored
at a component/port path instead of a source line — become
``logicalLocations``.  Every analysis CLI exposes this via ``--sarif FILE``
(``-`` for stdout), making the reports ingestible by GitHub code scanning.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path, PurePosixPath
from typing import Iterable, Optional

from .findings import RULES, Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_TOOL_NAME = "repro-analysis"
_TOOL_URI = "https://github.com/kompics/kompics"  # paper artifact lineage


def _rule_order() -> list[str]:
    return sorted(RULES)


def _uri(path: str) -> str:
    """Forward-slash, preferably repo-relative, artifact URI."""
    p = Path(path)
    try:
        p = p.resolve().relative_to(Path.cwd())
    except (OSError, ValueError):
        pass
    return str(PurePosixPath(p))


def _location(finding: Finding) -> dict:
    if finding.file is not None:
        physical: dict = {"artifactLocation": {"uri": _uri(finding.file)}}
        if finding.line is not None:
            region: dict = {"startLine": finding.line}
            if finding.col is not None:
                # SARIF columns are 1-based; ast col_offset is 0-based.
                region["startColumn"] = finding.col + 1
            physical["region"] = region
        return {"physicalLocation": physical}
    return {
        "logicalLocations": [
            {"fullyQualifiedName": finding.obj or "<unknown>", "kind": "member"}
        ]
    }


def to_sarif(findings: Iterable[Finding], *, pretty: bool = True) -> str:
    """Serialize findings as a SARIF 2.1.0 log (string)."""
    order = _rule_order()
    index = {rule_id: i for i, rule_id in enumerate(order)}
    rules = [
        {
            "id": rule_id,
            "name": RULES[rule_id].name,
            "shortDescription": {"text": RULES[rule_id].name},
            "fullDescription": {"text": RULES[rule_id].summary},
            "defaultConfiguration": {"level": "warning"},
            "properties": {"pass": RULES[rule_id].pass_},
        }
        for rule_id in order
    ]
    results = [
        {
            "ruleId": finding.rule,
            "ruleIndex": index[finding.rule],
            "level": "warning",
            "message": {"text": finding.message},
            "locations": [_location(finding)],
        }
        for finding in findings
    ]
    log = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "informationUri": _TOOL_URI,
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2 if pretty else None, sort_keys=True)


def write_sarif(findings: Iterable[Finding], destination: Optional[str]) -> None:
    """Write a SARIF log to ``destination`` (``-`` or None = stdout)."""
    text = to_sarif(findings)
    if destination is None or destination == "-":
        sys.stdout.write(text + "\n")
    else:
        Path(destination).write_text(text + "\n", encoding="utf-8")
