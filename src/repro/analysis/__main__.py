"""Entry point for ``python -m repro.analysis``."""

import os
import sys

from .cli import main

try:
    code = main()
    sys.stdout.flush()
except BrokenPipeError:
    # Downstream closed early (e.g. ``| head``): exit quietly like any
    # well-behaved filter.  Re-point stdout at devnull so the interpreter's
    # shutdown flush doesn't raise a second time.
    os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    code = 0
sys.exit(code)
