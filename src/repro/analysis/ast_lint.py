"""AST lint pass: source-level checks on ComponentDefinition subclasses.

The linter works purely on syntax trees — nothing is imported or executed —
in two phases:

1. **Index** every scanned file (plus the installed ``repro`` package, so
   linting ``examples/`` alone still knows the framework's types): class
   hierarchies by name, ``PortType`` subclasses with their declared
   positive/negative event types, and ``Event`` subclasses.
2. **Lint** each ``ComponentDefinition`` subclass against the rules in
   :mod:`repro.analysis.rules` (A001–A005).

Name resolution is deliberately name-based (no import graph evaluation):
a class named ``Network`` is assumed to be *the* ``Network`` the index
knows.  That heuristic is exact for this repository's layout and degrades
to silence — never to false positives — when a name is unknown: every
rule skips checks it cannot ground in the index.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional

from .config import AnalysisConfig, is_suppressed
from .findings import Finding

#: Root class names anchoring the three hierarchies the linter reasons about.
COMPONENT_ROOT = "ComponentDefinition"
PORT_ROOT = "PortType"
EVENT_ROOT = "Event"


def _base_name(node: ast.expr) -> Optional[str]:
    """Unqualified name of a base-class expression (``a.b.C`` -> ``C``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


@dataclass
class HandlerInfo:
    """One handler method of a component class."""

    name: str
    node: ast.FunctionDef
    event_type: Optional[str]  # from @handles(...), None if undeclared
    event_param: Optional[str]  # name of the event parameter


@dataclass
class ClassInfo:
    """Index record for one class definition."""

    name: str
    module: "ModuleInfo"
    node: ast.ClassDef
    bases: tuple[str, ...]
    methods: dict[str, ast.FunctionDef] = field(default_factory=dict)
    handlers: dict[str, HandlerInfo] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed source file."""

    path: Path
    tree: ast.Module
    lines: list[str]
    imports: dict[str, str] = field(default_factory=dict)  # alias -> dotted name

    def line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


class ProjectIndex:
    """Name-level view of every class in the scanned file set."""

    def __init__(self) -> None:
        self.classes: dict[str, ClassInfo] = {}
        self.bases: dict[str, set[str]] = {}
        self.port_events: dict[str, dict[str, tuple[str, ...]]] = {}
        #: port type name -> {request event name: (indication names, ...)}
        #: from ``responds_to = {...}`` class attributes.
        self.port_responds_to: dict[str, dict[str, tuple[str, ...]]] = {}

    # ------------------------------------------------------------- building

    def add_module(self, module: ModuleInfo) -> None:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                self._add_class(module, node)

    def _add_class(self, module: ModuleInfo, node: ast.ClassDef) -> None:
        bases = tuple(b for b in map(_base_name, node.bases) if b)
        info = ClassInfo(node.name, module, node, bases)
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.methods[item.name] = item
                info.handlers[item.name] = HandlerInfo(
                    item.name, item, _handles_decorator(item), _event_param(item)
                )
        self.classes[node.name] = info
        self.bases.setdefault(node.name, set()).update(bases)
        self._extract_port_decl(node)

    def _extract_port_decl(self, node: ast.ClassDef) -> None:
        decl: dict[str, tuple[str, ...]] = {}
        for item in node.body:
            if not isinstance(item, ast.Assign):
                continue
            for target in item.targets:
                if isinstance(target, ast.Name) and target.id in ("positive", "negative"):
                    if isinstance(item.value, (ast.Tuple, ast.List)):
                        names = tuple(
                            n for n in map(_base_name, item.value.elts) if n
                        )
                        decl[target.id] = names
                elif isinstance(target, ast.Name) and target.id == "responds_to":
                    mapping = _extract_responds_to(item.value)
                    if mapping:
                        self.port_responds_to.setdefault(node.name, {}).update(mapping)
        if decl:
            existing = self.port_events.setdefault(node.name, {})
            existing.update(decl)

    # ------------------------------------------------------------- hierarchy

    def descends_from(self, name: str, root: str) -> bool:
        """Name-level transitive subclass check (``name`` may equal ``root``)."""
        seen: set[str] = set()
        frontier = [name]
        while frontier:
            current = frontier.pop()
            if current == root:
                return True
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self.bases.get(current, ()))
        return False

    def is_component(self, name: str) -> bool:
        return self.descends_from(name, COMPONENT_ROOT)

    def is_event(self, name: str) -> bool:
        return self.descends_from(name, EVENT_ROOT)

    def is_port_type(self, name: str) -> bool:
        return self.descends_from(name, PORT_ROOT)

    def events_related(self, a: str, b: str) -> bool:
        """True when one event type is a (reflexive) subtype of the other."""
        return self.descends_from(a, b) or self.descends_from(b, a)

    def port_direction_events(self, port: str, direction: str) -> Optional[tuple[str, ...]]:
        """Declared event names for ``direction`` of ``port``, searching bases.

        Returns None when the port type (or the direction's declaration)
        is unknown to the index.
        """
        seen: set[str] = set()
        frontier = [port]
        collected: list[str] = []
        known = False
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            decl = self.port_events.get(current)
            if decl is not None and direction in decl:
                known = True
                collected.extend(decl[direction])
            frontier.extend(self.bases.get(current, ()))
        return tuple(collected) if known else None

    def lookup_method(self, cls: str, method: str) -> Optional[HandlerInfo]:
        """Resolve ``method`` through ``cls`` and its indexed bases."""
        seen: set[str] = set()
        frontier = [cls]
        while frontier:
            current = frontier.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is not None:
                if method in info.handlers:
                    return info.handlers[method]
                frontier.extend(info.bases)
            else:
                frontier.extend(self.bases.get(current, ()))
        return None


def _extract_responds_to(value: ast.expr) -> dict[str, tuple[str, ...]]:
    """Parse a ``responds_to = {Request: (Indication, ...)}`` literal."""
    mapping: dict[str, tuple[str, ...]] = {}
    if not isinstance(value, ast.Dict):
        return mapping
    for key, val in zip(value.keys, value.values):
        request = _base_name(key) if key is not None else None
        if request is None:
            continue
        if isinstance(val, (ast.Tuple, ast.List)):
            indications = tuple(n for n in map(_base_name, val.elts) if n)
        else:
            name = _base_name(val)
            indications = (name,) if name else ()
        if indications:
            mapping[request] = indications
    return mapping


def _handles_decorator(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> Optional[str]:
    for decorator in fn.decorator_list:
        if isinstance(decorator, ast.Call):
            name = _base_name(decorator.func)
            if name == "handles" and decorator.args:
                return _base_name(decorator.args[0])
    return None


def _event_param(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> Optional[str]:
    args = fn.args.posonlyargs + fn.args.args
    if len(args) >= 2:  # (self, event, ...)
        return args[1].arg
    return None


@dataclass
class ComponentClassContext:
    """Everything the rules need to know about one component class."""

    info: ClassInfo
    index: ProjectIndex
    #: self attribute -> (port type name, provided?) from self.provides/requires
    ports: dict[str, tuple[str, bool]] = field(default_factory=dict)
    #: methods referenced by self.subscribe(self.m, ...) -> had event_type kwarg
    subscribe_calls: list[ast.Call] = field(default_factory=list)
    trigger_calls: list[tuple[ast.Call, ast.FunctionDef]] = field(default_factory=list)

    @property
    def module(self) -> ModuleInfo:
        return self.info.module

    def handler_methods(self) -> list[HandlerInfo]:
        """Methods that run as event handlers: @handles-decorated or subscribed."""
        subscribed = set()
        for call in self.subscribe_calls:
            method = _self_method_ref(call)
            if method is not None:
                subscribed.add(method)
        out = []
        for name, handler in self.info.handlers.items():
            if handler.event_type is not None or name in subscribed:
                out.append(handler)
        return out


def _self_method_ref(subscribe_call: ast.Call) -> Optional[str]:
    if not subscribe_call.args:
        return None
    first = subscribe_call.args[0]
    if (
        isinstance(first, ast.Attribute)
        and isinstance(first.value, ast.Name)
        and first.value.id == "self"
    ):
        return first.attr
    return None


def _extract_context(info: ClassInfo, index: ProjectIndex) -> ComponentClassContext:
    ctx = ComponentClassContext(info, index)
    for method in info.methods.values():
        for node in ast.walk(method):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                call = node.value
                fn = call.func
                if (
                    isinstance(fn, ast.Attribute)
                    and isinstance(fn.value, ast.Name)
                    and fn.value.id == "self"
                    and fn.attr in ("provides", "requires")
                    and call.args
                ):
                    port_name = _base_name(call.args[0])
                    if port_name is None:
                        continue
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            ctx.ports[target.attr] = (port_name, fn.attr == "provides")
            elif isinstance(node, ast.Call):
                fn = node.func
                if (
                    isinstance(fn, ast.Attribute)
                    and isinstance(fn.value, ast.Name)
                    and fn.value.id == "self"
                ):
                    if fn.attr == "subscribe":
                        ctx.subscribe_calls.append(node)
                    elif fn.attr == "trigger":
                        ctx.trigger_calls.append((node, method))
    return ctx


# ---------------------------------------------------------------------- scan


def iter_python_files(paths: Iterable[Path | str]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


#: Parse cache shared by every analysis pass (AST lint, flow extractor):
#: resolved path -> ((mtime_ns, size), ModuleInfo).  One source file is
#: parsed once per run even when several passes walk the same tree.
_parse_cache: dict[Path, tuple[tuple[int, int], ModuleInfo]] = {}


def clear_parse_cache() -> None:
    _parse_cache.clear()


def parse_module(path: Path) -> Optional[ModuleInfo]:
    try:
        resolved = path.resolve()
        stat = resolved.stat()
    except OSError:
        return None
    stamp = (stat.st_mtime_ns, stat.st_size)
    cached = _parse_cache.get(resolved)
    if cached is not None and cached[0] == stamp:
        return cached[1]
    try:
        source = resolved.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError):
        return None
    module = ModuleInfo(path, tree, source.splitlines())
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                module.imports[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                module.imports[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    _parse_cache[resolved] = (stamp, module)
    return module


def _framework_registry_paths() -> list[Path]:
    """The installed ``repro`` package, indexed (not linted) for type info."""
    try:
        import repro
    except ImportError:  # pragma: no cover - repro is always importable here
        return []
    return [Path(repro.__file__).parent]


def build_index(
    lint_modules: list[ModuleInfo], registry_paths: Iterable[Path] = ()
) -> ProjectIndex:
    index = ProjectIndex()
    linted = {module.path.resolve() for module in lint_modules}
    for path in iter_python_files(registry_paths):
        if path.resolve() in linted:
            continue
        module = parse_module(path)
        if module is not None:
            index.add_module(module)
    for module in lint_modules:
        index.add_module(module)
    return index


def lint_paths(
    paths: Iterable[Path | str],
    config: Optional[AnalysisConfig] = None,
) -> list[Finding]:
    """Run the AST lint over files/directories; returns sorted findings."""
    from . import rules

    config = config or AnalysisConfig()
    modules = []
    for path in iter_python_files(paths):
        if config.path_excluded(path):
            continue
        module = parse_module(path)
        if module is not None:
            modules.append(module)
    index = build_index(modules, _framework_registry_paths())

    findings: list[Finding] = []
    for module in modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not index.is_component(node.name) or node.name == COMPONENT_ROOT:
                continue
            info = index.classes.get(node.name)
            if info is None or info.node is not node:
                # Re-bind: index holds the last definition of a reused
                # name; lint the actual node seen in this module.
                info = ClassInfo(node.name, module, node, tuple(
                    b for b in map(_base_name, node.bases) if b
                ))
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        info.methods[item.name] = item
                        info.handlers[item.name] = HandlerInfo(
                            item.name, item, _handles_decorator(item), _event_param(item)
                        )
            ctx = _extract_context(info, index)
            for check in rules.AST_CHECKS:
                for rule_id, message, where in check(ctx):
                    if not config.rule_enabled(rule_id):
                        continue
                    line = getattr(where, "lineno", None)
                    if line is not None and is_suppressed(rule_id, module.line(line)):
                        continue
                    findings.append(
                        Finding(
                            rule=rule_id,
                            message=message,
                            file=str(module.path),
                            line=line,
                            col=getattr(where, "col_offset", None),
                        )
                    )
    findings.sort(key=lambda f: (f.file or "", f.line or 0, f.rule))
    return findings
