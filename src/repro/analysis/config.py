"""Analysis configuration: rule selection and path exclusion.

Configuration lives in ``pyproject.toml``::

    [tool.repro.analysis]
    select = ["A", "W"]      # rule ids or prefixes to enable (default: all)
    ignore = ["A002"]        # rule ids or prefixes to disable
    exclude = ["**/_build/**"]  # path globs the linter skips

CLI flags (``--select``, ``--ignore``) override the file.  Line-level
suppression uses a trailing comment on the flagged line::

    handler_does_io()  # repro: noqa[A002]
    anything_goes()    # repro: noqa

``# repro: noqa`` with no bracket suppresses every rule on that line.
"""

from __future__ import annotations

import fnmatch
import re
import tomllib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional

from .findings import RULES

_NOQA = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]*)\])?")


@dataclass
class AnalysisConfig:
    """Effective analysis settings after merging file + CLI sources."""

    select: tuple[str, ...] = ()   # empty means "all rules"
    ignore: tuple[str, ...] = ()
    exclude: tuple[str, ...] = ()

    def rule_enabled(self, rule_id: str) -> bool:
        if self.select and not _matches_any(rule_id, self.select):
            return False
        return not _matches_any(rule_id, self.ignore)

    def path_excluded(self, path: Path | str) -> bool:
        text = str(path)
        return any(
            fnmatch.fnmatch(text, pattern) or fnmatch.fnmatch(Path(text).name, pattern)
            for pattern in self.exclude
        )

    def merged(
        self,
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
    ) -> "AnalysisConfig":
        """A copy with CLI overrides applied (None keeps the file value)."""
        return AnalysisConfig(
            select=tuple(select) if select is not None else self.select,
            ignore=tuple(ignore) if ignore is not None else self.ignore,
            exclude=self.exclude,
        )


def _matches_any(rule_id: str, patterns: tuple[str, ...]) -> bool:
    return any(rule_id == p or rule_id.startswith(p) for p in patterns)


def load_config(pyproject: Optional[Path] = None) -> AnalysisConfig:
    """Read ``[tool.repro.analysis]``; missing file/table yields defaults."""
    path = pyproject if pyproject is not None else find_pyproject()
    if path is None or not path.is_file():
        return AnalysisConfig()
    with path.open("rb") as fh:
        data = tomllib.load(fh)
    table = data.get("tool", {}).get("repro", {}).get("analysis", {})
    unknown = set(table) - {"select", "ignore", "exclude"}
    if unknown:
        raise ValueError(
            f"unknown keys in [tool.repro.analysis]: {sorted(unknown)}"
        )
    config = AnalysisConfig(
        select=tuple(table.get("select", ())),
        ignore=tuple(table.get("ignore", ())),
        exclude=tuple(table.get("exclude", ())),
    )
    for patterns in (config.select, config.ignore):
        for pattern in patterns:
            if not any(rule_id.startswith(pattern) for rule_id in RULES):
                raise ValueError(
                    f"[tool.repro.analysis] names unknown rule or prefix {pattern!r}"
                )
    return config


def find_pyproject(start: Optional[Path] = None) -> Optional[Path]:
    """Walk upward from ``start`` (default: cwd) to the nearest pyproject.toml."""
    current = (start or Path.cwd()).resolve()
    for candidate in (current, *current.parents):
        path = candidate / "pyproject.toml"
        if path.is_file():
            return path
    return None


def suppressed_rules(source_line: str) -> Optional[set[str]]:
    """Parse a ``# repro: noqa[...]`` comment on one physical source line.

    Returns None when there is no suppression, an empty set for a bare
    ``# repro: noqa`` (suppress everything), or the set of rule ids named
    in the bracket.
    """
    match = _NOQA.search(source_line)
    if match is None:
        return None
    rules = match.group("rules")
    if rules is None:
        return set()
    return {item.strip() for item in rules.split(",") if item.strip()}


def is_suppressed(rule_id: str, source_line: str) -> bool:
    rules = suppressed_rules(source_line)
    if rules is None:
        return False
    return not rules or rule_id in rules
