"""``python -m repro.analysis all`` — every static pass, one exit code.

Runs the AST lint (A*), the event-flow analysis (F*), the
distribution-readiness analysis (D*), the memory-footprint analysis
(M*), and the shard-safety analysis (P*) over the same path set —
sharing the AST parse cache, so each source file is parsed once — and
merges the findings into a single sorted report.  With ``--wiring-examples DIR`` it
additionally assembles every example script in ``DIR`` that declares a
module-level ``WIRING_ROOT`` component class (under a ManualScheduler:
built, verified, never started) and folds the wiring findings (W*) in.

This is the CI and pre-commit entry point: exit 0 means the whole tree is
clean across every family the static passes cover.
"""

from __future__ import annotations

import argparse
import contextlib
import importlib.util
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from .ast_lint import lint_paths
from .config import AnalysisConfig, find_pyproject, load_config
from .dist.checks import analyze_paths as dist_paths
from .findings import Finding
from .flow.graph import analyze_paths as flow_paths
from .mem.checks import analyze_paths as mem_paths
from .par.checks import analyze_paths as par_paths
from .sarif import write_sarif

#: Module-level attribute an example script sets to its root component
#: class to opt into aggregate wiring verification.
WIRING_ROOT_ATTR = "WIRING_ROOT"


def load_wiring_root(path: Path):
    """Import one example script and return its ``WIRING_ROOT`` class.

    Returns None when the script does not declare one.  The module is
    executed (examples only define classes at import time) and removed
    from ``sys.modules`` again so repeated loads stay independent.
    """
    spec = importlib.util.spec_from_file_location(
        f"repro_wiring_{path.stem}", path
    )
    if spec is None or spec.loader is None:
        return None
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    return getattr(module, WIRING_ROOT_ATTR, None)


def verify_example_assemblies(
    directory: Path, config: Optional[AnalysisConfig] = None
) -> list[Finding]:
    """Assemble and wiring-verify every ``WIRING_ROOT`` example script."""
    from repro import ComponentSystem, ManualScheduler
    from .wiring import verify_system

    config = config or AnalysisConfig()
    findings: list[Finding] = []
    for path in sorted(directory.glob("*.py")):
        if config.path_excluded(path):
            continue
        # Example components may print during assembly or teardown; keep
        # stdout clean for the JSON/SARIF report streams.
        with contextlib.redirect_stdout(sys.stderr):
            root_cls = load_wiring_root(path)
            if root_cls is None:
                continue
            system = ComponentSystem(scheduler=ManualScheduler(), seed=7)
            try:
                system.bootstrap(root_cls)
                verified = verify_system(system)
            finally:
                system.shutdown()
        for finding in verified:
            if not config.rule_enabled(finding.rule):
                continue
            findings.append(
                Finding(
                    rule=finding.rule,
                    message=f"[{path.name}] {finding.message}",
                    obj=finding.obj,
                    extra=finding.extra,
                )
            )
    return findings


def run_all(
    paths: Sequence[Path],
    config: Optional[AnalysisConfig] = None,
    wiring_examples: Optional[Path] = None,
) -> dict[str, list[Finding]]:
    """Run every pass; returns findings per pass name (insertion order)."""
    config = config or AnalysisConfig()
    per_pass: dict[str, list[Finding]] = {
        "lint": lint_paths(paths, config=config),
        "flow": flow_paths(paths, config=config),
        "dist": dist_paths(paths, config=config),
        "mem": mem_paths(paths, config=config),
        "par": par_paths(paths, config=config),
    }
    if wiring_examples is not None:
        per_pass["wiring"] = verify_example_assemblies(wiring_examples, config)
    return per_pass


def merged_findings(per_pass: dict[str, list[Finding]]) -> list[Finding]:
    merged = [f for findings in per_pass.values() for f in findings]
    merged.sort(key=lambda f: (f.file or "", f.line or 0, f.rule, f.obj or ""))
    return merged


def to_aggregate_json(per_pass: dict[str, list[Finding]]) -> str:
    merged = merged_findings(per_pass)
    counts: dict[str, int] = {}
    for finding in merged:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return json.dumps(
        {
            "version": 1,
            "passes": {
                name: {
                    "findings": [f.to_dict() for f in findings],
                    "total": len(findings),
                }
                for name, findings in per_pass.items()
            },
            "counts": counts,
            "total": len(merged),
        },
        indent=2,
        sort_keys=True,
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis all",
        description=(
            "Run every static analysis pass (lint A*, flow F*, dist D*, "
            "mem M*, par P*) over the tree with one merged report and one "
            "exit code; --wiring-examples DIR folds in wiring verification "
            "(W*) of example assemblies."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="+",
        type=Path,
        help="files or directories to analyze (directories walked recursively)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--sarif",
        type=str,
        default=None,
        metavar="FILE",
        help="additionally write a SARIF 2.1.0 log ('-' for stdout)",
    )
    parser.add_argument(
        "--wiring-examples",
        type=Path,
        default=None,
        metavar="DIR",
        help="assemble every WIRING_ROOT script in DIR and verify wiring",
    )
    parser.add_argument(
        "--select", action="append", default=None, metavar="RULES",
        help="comma-separated rule prefixes to enable",
    )
    parser.add_argument(
        "--ignore", action="append", default=None, metavar="RULES",
        help="comma-separated rule prefixes to disable",
    )
    parser.add_argument(
        "--config", type=Path, default=None, metavar="PYPROJECT",
        help="pyproject.toml to read [tool.repro.analysis] from",
    )
    return parser


def _split_csv(values: Optional[Sequence[str]]) -> tuple[str, ...]:
    if not values:
        return ()
    out: list[str] = []
    for value in values:
        out.extend(part.strip() for part in value.split(",") if part.strip())
    return tuple(out)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)

    for path in args.paths:
        if not path.exists():
            print(f"error: no such path: {path}", file=sys.stderr)
            return 2
    if args.wiring_examples is not None and not args.wiring_examples.is_dir():
        print(
            f"error: not a directory: {args.wiring_examples}", file=sys.stderr
        )
        return 2

    pyproject = args.config
    if pyproject is None:
        pyproject = find_pyproject(args.paths[0])
    try:
        config = load_config(pyproject) if pyproject else AnalysisConfig()
    except Exception as exc:  # noqa: BLE001 - report config errors as usage errors
        print(f"error: bad config {pyproject}: {exc}", file=sys.stderr)
        return 2
    config = config.merged(
        select=_split_csv(args.select) if args.select else None,
        ignore=_split_csv(args.ignore) if args.ignore else None,
    )

    per_pass = run_all(
        args.paths, config=config, wiring_examples=args.wiring_examples
    )
    merged = merged_findings(per_pass)

    if args.sarif is not None:
        write_sarif(merged, args.sarif)
    if args.format == "json":
        print(to_aggregate_json(per_pass))
    else:
        for finding in merged:
            print(finding.format())
        totals = ", ".join(
            f"{name}: {len(findings)}" for name, findings in per_pass.items()
        )
        print(f"{len(merged)} finding(s) ({totals})")
    return 1 if merged else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
