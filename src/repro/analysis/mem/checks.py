"""The M001–M006 checks over the extraction model.

Each check yields ``(rule, message, module, line, col, extra)`` tuples
anchored in scanned modules only; :func:`analyze_paths` applies rule
selection and ``# repro: noqa[M...]`` suppression and returns sorted
:class:`~repro.analysis.findings.Finding` records — the same driver
contract as the lint, flow, and dist passes.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator, Optional

from ..ast_lint import (
    COMPONENT_ROOT,
    EVENT_ROOT,
    PORT_ROOT,
    ClassInfo,
    ModuleInfo,
    ProjectIndex,
    _base_name,
)
from ..config import AnalysisConfig, is_suppressed
from ..dist.checks import _payload_nodes
from ..dist.model import _resolve_dotted, build_component_model
from ..findings import Finding
from .model import (
    INIT_METHODS,
    MemModel,
    MUTABLE_CONTAINER_NAMES,
    SlotInfo,
    build_mem_model,
    build_slot_info,
)

_Raw = tuple[str, str, ModuleInfo, int, Optional[int], dict]

#: Method calls that grow a container / that shrink or bound one.
GROW_METHODS = frozenset(
    {"add", "append", "appendleft", "extend", "insert", "setdefault", "update"}
)
SHRINK_METHODS = frozenset(
    {"pop", "popitem", "popleft", "remove", "discard", "clear"}
)

#: default_factory callables that allocate a mutable container per event.
MUTABLE_FACTORIES = frozenset(
    {"dict", "list", "set", "defaultdict", "Counter", "OrderedDict", "deque"}
)


def _class_info(node: ast.ClassDef, module: ModuleInfo, index: ProjectIndex) -> ClassInfo:
    """The index record for ``node``, re-bound if the name was reused."""
    info = index.classes.get(node.name)
    if info is not None and info.node is node:
        return info
    rebound = ClassInfo(
        node.name, module, node, tuple(b for b in map(_base_name, node.bases) if b)
    )
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            rebound.methods[item.name] = item
    return rebound


def _slot_info_for(node: ast.ClassDef, info: ClassInfo, model: MemModel) -> SlotInfo:
    cached = model.slots.get(node.name)
    indexed = model.index.classes.get(node.name)
    if cached is not None and indexed is not None and indexed.node is node:
        return cached
    return build_slot_info(info)


def _self_attr(expr: ast.expr, selfname: str) -> Optional[str]:
    """``self.attr`` -> ``"attr"``; anything else -> None."""
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == selfname
    ):
        return expr.attr
    return None


def _first_param(method: ast.FunctionDef) -> Optional[str]:
    args = method.args.posonlyargs + method.args.args
    return args[0].arg if args else None


# ------------------------------------------------------------------- M001


def _in_m001_domain(name: str, index: ProjectIndex) -> bool:
    if name in (EVENT_ROOT, COMPONENT_ROOT, PORT_ROOT):
        return False
    return index.is_event(name) or index.is_component(name) or index.is_port_type(name)


def _check_missing_slots(
    node: ast.ClassDef, module: ModuleInfo, model: MemModel, slot_info: SlotInfo
) -> Iterator[_Raw]:
    if slot_info.has_slots:
        return
    if not model.bases_complete(node.name):
        return  # a dict-based base keeps the __dict__ anyway: no win
    if slot_info.dynamic_writes:
        return  # slotting would break these writes; M005 reports them
    fix = (
        "add slots=True to the @dataclass decorator"
        if slot_info.is_dataclass
        else "declare __slots__"
    )
    yield (
        "M001",
        f"{node.name} completes an already slotted base chain but has no "
        f"__slots__, so every instance pays a full __dict__; {fix}",
        module,
        node.lineno,
        node.col_offset,
        {"class": node.name, "dataclass": slot_info.is_dataclass},
    )


# ------------------------------------------------------------------- M005


def _check_dynamic_attrs(
    node: ast.ClassDef, module: ModuleInfo, model: MemModel, slot_info: SlotInfo
) -> Iterator[_Raw]:
    if not (slot_info.has_slots or model.bases_complete(node.name)):
        return
    if not slot_info.dynamic_writes:
        return
    declared = model.declared_attrs(node.name)
    for attr, line, method in slot_info.dynamic_writes:
        if declared is not None and attr in declared:
            continue  # declared by a base; the write does not defeat slots
        state = "is slotted" if slot_info.has_slots else "should be slotted (M001)"
        yield (
            "M005",
            f"{node.name}.{method} creates attribute self.{attr} outside "
            f"__init__/dump_state, but {node.name} {state}; declare the "
            "attribute as a field or move the write into __init__",
            module,
            line,
            None,
            {"class": node.name, "attr": attr, "method": method},
        )


# ------------------------------------------------------------------- M006


def _mutable_factory(value: ast.expr) -> Optional[str]:
    """Name of a mutable default_factory in a ``field(...)`` call, or None."""
    if not (isinstance(value, ast.Call) and _base_name(value.func) == "field"):
        return None
    for kw in value.keywords:
        if kw.arg != "default_factory":
            continue
        name = _base_name(kw.value) if not isinstance(kw.value, ast.Lambda) else None
        if name in MUTABLE_FACTORIES:
            return name
        if isinstance(kw.value, ast.Lambda):
            body = kw.value.body
            if isinstance(body, (ast.Dict, ast.DictComp)):
                return "dict"
            if isinstance(body, (ast.List, ast.ListComp)):
                return "list"
            if isinstance(body, (ast.Set, ast.SetComp)):
                return "set"
            if isinstance(body, ast.Call):
                inner = _base_name(body.func)
                if inner in MUTABLE_FACTORIES:
                    return inner
    return None


def _check_heavy_defaults(
    node: ast.ClassDef, module: ModuleInfo, model: MemModel
) -> Iterator[_Raw]:
    for item in node.body:
        if not (
            isinstance(item, ast.AnnAssign)
            and isinstance(item.target, ast.Name)
            and item.value is not None
        ):
            continue
        factory = _mutable_factory(item.value)
        if factory is None:
            continue
        yield (
            "M006",
            f"event field {node.name}.{item.target.id} defaults to a fresh "
            f"{factory}() per instance; an empty-tuple sentinel (or a "
            "required field) avoids the per-event allocation",
            module,
            item.lineno,
            None,
            {"event": node.name, "field": item.target.id, "factory": factory},
        )


# ------------------------------------------------------------------- M002


def _growth_sites(
    method: ast.FunctionDef, selfname: str, mutable_attrs: Iterable[str]
) -> Iterator[tuple[str, int]]:
    attrs = set(mutable_attrs)
    for stmt in ast.walk(method):
        if isinstance(stmt, ast.Call):
            fn = stmt.func
            if isinstance(fn, ast.Attribute) and fn.attr in GROW_METHODS:
                attr = _self_attr(fn.value, selfname)
                if attr in attrs:
                    yield attr, stmt.lineno
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            for target in targets:
                if isinstance(target, ast.Subscript):
                    attr = _self_attr(target.value, selfname)
                    if attr in attrs:
                        yield attr, stmt.lineno


def _shrink_attrs(info: ClassInfo) -> set[str]:
    """Attrs with a discard/del/clear/pop or replacement site in the class."""
    out: set[str] = set()
    for method in info.methods.values():
        selfname = _first_param(method)
        if selfname is None:
            continue
        for stmt in ast.walk(method):
            if isinstance(stmt, ast.Call):
                fn = stmt.func
                if isinstance(fn, ast.Attribute) and fn.attr in SHRINK_METHODS:
                    attr = _self_attr(fn.value, selfname)
                    if attr is not None:
                        out.add(attr)
            elif isinstance(stmt, ast.Delete):
                for target in stmt.targets:
                    base = (
                        target.value if isinstance(target, ast.Subscript) else target
                    )
                    attr = _self_attr(base, selfname)
                    if attr is not None:
                        out.add(attr)
            elif isinstance(stmt, ast.Assign) and method.name != "__init__":
                # wholesale replacement bounds the old container's growth;
                # covers tuple unpacks like ``old, self.x = self.x, []``
                for target in stmt.targets:
                    elts = (
                        target.elts
                        if isinstance(target, (ast.Tuple, ast.List))
                        else [target]
                    )
                    for elt in elts:
                        attr = _self_attr(elt, selfname)
                        if attr is not None:
                            out.add(attr)
    return out


def _check_unbounded_growth(
    node: ast.ClassDef, module: ModuleInfo, model: MemModel, info: ClassInfo
) -> Iterator[_Raw]:
    comp = build_component_model(info, model.index)
    if not comp.mutable_attrs:
        return
    handlers = model.handlers_of(node.name) - INIT_METHODS
    shrunk = _shrink_attrs(info)
    reported: set[str] = set()
    for name in sorted(handlers):
        method = info.methods.get(name)
        if method is None:
            continue
        selfname = _first_param(method)
        if selfname is None:
            continue
        for attr, line in _growth_sites(method, selfname, comp.mutable_attrs):
            if attr in shrunk or attr in reported:
                continue
            reported.add(attr)
            yield (
                "M002",
                f"self.{attr} (mutable container assigned at line "
                f"{comp.mutable_attrs[attr]}) grows in handler {name} but "
                f"{node.name} never discards, deletes, clears, or replaces "
                "it — per-peer state grows without bound; add an eviction "
                "or TTL site",
                module,
                line,
                None,
                {"class": node.name, "attr": attr, "handler": name},
            )


# ------------------------------------------------------------------- M003


def _check_retained_event(
    node: ast.ClassDef, module: ModuleInfo, model: MemModel, info: ClassInfo
) -> Iterator[_Raw]:
    handlers = model.handlers_of(node.name) - INIT_METHODS
    for name in sorted(handlers):
        method = info.methods.get(name)
        if method is None:
            continue
        selfname = _first_param(method)
        handler_info = info.handlers.get(name)
        param = handler_info.event_param if handler_info is not None else None
        if selfname is None or param is None or param == selfname:
            continue
        events = model.events_of_handler(node.name, name)
        mutable_fields: set[str] = set()
        for event in events:
            mutable_fields |= model.mutable_fields(event)

        def stored_values(stmt: ast.stmt) -> Iterator[ast.expr]:
            """Expressions this statement stores into self.* state."""
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            else:
                if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
                    call = stmt.value
                    fn = call.func
                    if (
                        isinstance(fn, ast.Attribute)
                        and fn.attr in GROW_METHODS
                        and _self_attr(fn.value, selfname) is not None
                    ):
                        yield from call.args
                return
            for target in targets:
                base = target.value if isinstance(target, ast.Subscript) else target
                if _self_attr(base, selfname) is not None:
                    yield value
                    return

        for stmt in ast.walk(method):
            if not isinstance(stmt, ast.stmt):
                continue
            for value in stored_values(stmt):
                for sub, shielded in _payload_nodes(value):
                    if shielded:
                        continue
                    if isinstance(sub, ast.Name) and sub.id == param:
                        yield (
                            "M003",
                            f"handler {name} stores the delivered event "
                            f"({param}) into self.* — the whole payload "
                            "graph stays alive and aliases across "
                            "deliveries; copy the needed fields out",
                            module,
                            sub.lineno,
                            sub.col_offset,
                            {"class": node.name, "handler": name},
                        )
                    elif (
                        isinstance(sub, ast.Attribute)
                        and isinstance(sub.value, ast.Name)
                        and sub.value.id == param
                        and sub.attr in mutable_fields
                    ):
                        yield (
                            "M003",
                            f"handler {name} stores mutable payload field "
                            f"{param}.{sub.attr} into self.* by reference; "
                            "sender and later deliveries alias it — copy "
                            "with tuple()/dict() at the store site",
                            module,
                            sub.lineno,
                            sub.col_offset,
                            {"class": node.name, "handler": name, "field": sub.attr},
                        )


# ------------------------------------------------------------------- M004


def _is_address_ctor(call: ast.Call, module: ModuleInfo) -> bool:
    dotted = _resolve_dotted(call.func, module)
    if dotted is None:
        return False
    parts = dotted.split(".")
    return parts[-1] == "Address" and (len(parts) == 1 or parts[-2] == "address")


def _loop_node_ids(method: ast.FunctionDef) -> set[int]:
    out: set[int] = set()
    for node in ast.walk(method):
        if isinstance(
            node,
            (ast.For, ast.AsyncFor, ast.While, ast.ListComp, ast.SetComp,
             ast.DictComp, ast.GeneratorExp),
        ):
            out.update(id(sub) for sub in ast.walk(node))
    return out


def _check_interning(
    node: ast.ClassDef, module: ModuleInfo, model: MemModel, info: ClassInfo
) -> Iterator[_Raw]:
    handlers = model.handlers_of(node.name) - INIT_METHODS
    for method in info.methods.values():
        if method.name in INIT_METHODS:
            continue
        in_handler = method.name in handlers
        loop_ids = _loop_node_ids(method)
        for call in ast.walk(method):
            if not isinstance(call, ast.Call) or not _is_address_ctor(call, module):
                continue
            if not in_handler and id(call) not in loop_ids:
                continue
            where = (
                f"handler {method.name}" if in_handler else f"a loop in {method.name}"
            )
            yield (
                "M004",
                f"Address(...) constructed inside {where}; repeated peer "
                "addresses should share one instance — construct through "
                "Address.intern(...) instead",
                module,
                call.lineno,
                call.col_offset,
                {"class": node.name, "method": method.name},
            )


# ----------------------------------------------------------------- driver


def analyze_paths(
    paths: Iterable[Path | str],
    config: Optional[AnalysisConfig] = None,
) -> list[Finding]:
    """Run the mem pass over files/directories; returns sorted findings."""
    config = config or AnalysisConfig()
    model, scanned = build_mem_model(paths, config)
    index = model.index

    raw: list[_Raw] = []
    for module in scanned.values():
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            info = _class_info(node, module, index)
            if _in_m001_domain(node.name, index):
                slot_info = _slot_info_for(node, info, model)
                raw.extend(_check_missing_slots(node, module, model, slot_info))
                raw.extend(_check_dynamic_attrs(node, module, model, slot_info))
            if index.is_event(node.name) and node.name != EVENT_ROOT:
                raw.extend(_check_heavy_defaults(node, module, model))
            if index.is_component(node.name) and node.name != COMPONENT_ROOT:
                raw.extend(_check_unbounded_growth(node, module, model, info))
                raw.extend(_check_retained_event(node, module, model, info))
                raw.extend(_check_interning(node, module, model, info))

    findings: list[Finding] = []
    for rule_id, message, module, line, col, extra in raw:
        if not config.rule_enabled(rule_id):
            continue
        if is_suppressed(rule_id, module.line(line)):
            continue
        findings.append(
            Finding(
                rule=rule_id,
                message=message,
                file=str(module.path),
                line=line,
                col=col,
                extra=extra,
            )
        )
    findings.sort(key=lambda f: (f.file or "", f.line or 0, f.rule))
    return findings
