"""Extraction model for the memory-footprint pass.

Everything here is derived from the shared :mod:`..ast_lint` index and
the flow pass's producer/consumer graph — no imports of analyzed code.
The model answers three questions per class:

- slotting: does the class declare ``__slots__`` (literally or via
  ``@dataclass(slots=True)``), which instance attributes does it declare,
  and is its entire base chain slot-complete?
- handlers: which methods run as event handlers (``@handles`` or
  subscription sites anywhere in the program), and which event types do
  they receive?
- payloads: which annotated fields of an event type are mutable
  containers (the part of a payload a handler must not retain by
  reference)?

Grounding is conservative: a base class the index cannot resolve makes
the chain incomplete (M001 degrades to silence), and an annotation that
does not ground to a known mutable container never marks a field
mutable.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional

from ..ast_lint import (
    ClassInfo,
    ModuleInfo,
    ProjectIndex,
    _base_name,
    build_index,
    _framework_registry_paths,
    iter_python_files,
    parse_module,
)
from ..config import AnalysisConfig
from ..flow.graph import build_flow_graph

#: Annotation/default-factory roots denoting mutable containers.
MUTABLE_CONTAINER_NAMES = frozenset(
    {
        "list", "dict", "set", "bytearray", "deque", "defaultdict",
        "Counter", "OrderedDict", "List", "Dict", "Set",
        "MutableMapping", "MutableSequence", "MutableSet",
    }
)

#: Unindexed bases that still leave the instance layout __dict__-free.
_SLOTTED_LEAVES = frozenset({"object"})

#: Methods allowed to create instance attributes on a slotted class.
INIT_METHODS = frozenset(
    {"__init__", "__post_init__", "__new__", "dump_state", "load_state"}
)


@dataclass(frozen=True)
class SlotInfo:
    """Static slotting facts for one class definition."""

    name: str
    has_slots: bool
    is_dataclass: bool
    #: instance attributes this class declares: dataclass/annotated
    #: fields, literal ``__slots__`` entries, and class-body assignments
    declared: frozenset[str]
    #: (attr, line, method) for self-attribute creation outside
    #: :data:`INIT_METHODS`; candidate M005 sites, and an M001 guard
    #: (slotting a class that grows attributes dynamically would break it)
    dynamic_writes: tuple[tuple[str, int, str], ...]


def _decorator_call(deco: ast.expr) -> tuple[Optional[str], Optional[ast.Call]]:
    if isinstance(deco, ast.Call):
        return _base_name(deco.func), deco
    return _base_name(deco), None


def _dataclass_slots(node: ast.ClassDef) -> tuple[bool, bool]:
    """(is_dataclass, slots=True present) from the decorator list."""
    for deco in node.decorator_list:
        name, call = _decorator_call(deco)
        if name != "dataclass":
            continue
        if call is None:
            return True, False
        for kw in call.keywords:
            if kw.arg == "slots" and isinstance(kw.value, ast.Constant):
                return True, bool(kw.value.value)
        return True, False
    return False, False


def _slots_literal(value: ast.expr) -> Optional[frozenset[str]]:
    if isinstance(value, ast.Constant) and isinstance(value.value, str):
        return frozenset({value.value})
    if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
        names = set()
        for elt in value.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                names.add(elt.value)
        return frozenset(names)
    return None  # computed __slots__: counts as slotted, fields unknown


def _is_classvar(ann: ast.expr) -> bool:
    for node in ast.walk(ann):
        if isinstance(node, (ast.Name, ast.Attribute)):
            if _base_name(node) == "ClassVar":
                return True
    return False


def _self_attr_writes(
    method: ast.FunctionDef,
) -> Iterable[tuple[str, int]]:
    """(attr, line) for every instance-attribute creation in ``method``.

    Covers ``self.x = ...`` (plain, annotated, augmented — augmented
    cannot create, but a slotted class still needs the name declared) and
    the frozen-dataclass idiom ``object.__setattr__(self, "x", ...)``.
    """
    if not method.args.args:
        return
    selfname = method.args.args[0].arg
    for node in ast.walk(method):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Call):
            fn = node.func
            if (
                isinstance(fn, ast.Attribute)
                and fn.attr == "__setattr__"
                and isinstance(fn.value, ast.Name)
                and fn.value.id == "object"
                and len(node.args) >= 3
                and isinstance(node.args[0], ast.Name)
                and node.args[0].id == selfname
                and isinstance(node.args[1], ast.Constant)
                and isinstance(node.args[1].value, str)
            ):
                yield node.args[1].value, node.lineno
            continue
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == selfname
            ):
                yield target.attr, node.lineno


def build_slot_info(info: ClassInfo) -> SlotInfo:
    node = info.node
    is_dataclass, dc_slots = _dataclass_slots(node)
    declared: set[str] = set()
    has_slots = dc_slots
    for item in node.body:
        if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
            if not _is_classvar(item.annotation):
                declared.add(item.target.id)
        elif isinstance(item, ast.Assign):
            for target in item.targets:
                if not isinstance(target, ast.Name):
                    continue
                if target.id == "__slots__":
                    has_slots = True
                    names = _slots_literal(item.value)
                    if names is not None:
                        declared.update(names)
                else:
                    declared.add(target.id)
    declared.update(info.methods)
    for method in info.methods.values():
        if method.name in INIT_METHODS:
            declared.update(attr for attr, _ in _self_attr_writes(method))

    dynamic: list[tuple[str, int, str]] = []
    for method in info.methods.values():
        if method.name in INIT_METHODS:
            continue
        for attr, line in _self_attr_writes(method):
            if attr not in declared:
                dynamic.append((attr, line, method.name))
    dynamic.sort(key=lambda item: item[1])
    return SlotInfo(
        name=node.name,
        has_slots=has_slots,
        is_dataclass=is_dataclass,
        declared=frozenset(declared),
        dynamic_writes=tuple(dynamic),
    )


def _annotation_mutable(ann: ast.expr) -> bool:
    """True when the annotated type is (or may be) a mutable container.

    Checks the outermost constructor, looking through ``Optional``/union
    arms and string annotations; ``tuple[dict, ...]`` is *not* flagged —
    the retained object itself is immutable.
    """
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        try:
            return _annotation_mutable(ast.parse(ann.value, mode="eval").body)
        except SyntaxError:
            return False
    if isinstance(ann, (ast.Name, ast.Attribute)):
        return _base_name(ann) in MUTABLE_CONTAINER_NAMES
    if isinstance(ann, ast.Subscript):
        root = _base_name(ann.value)
        if root in ("Optional", "Union"):
            arms = (
                ann.slice.elts if isinstance(ann.slice, ast.Tuple) else [ann.slice]
            )
            return any(_annotation_mutable(arm) for arm in arms)
        return root in MUTABLE_CONTAINER_NAMES
    if isinstance(ann, ast.BinOp):  # X | Y unions
        return _annotation_mutable(ann.left) or _annotation_mutable(ann.right)
    return False


@dataclass
class MemModel:
    """Everything the M checks need, shared across rules."""

    index: ProjectIndex
    #: class name -> slotting facts (framework classes included)
    slots: dict[str, SlotInfo]
    #: (component class, method name) -> event type names it receives,
    #: from the whole-program flow graph plus @handles declarations
    handler_events: dict[tuple[str, str], set[str]]

    def slot_info(self, name: str) -> Optional[SlotInfo]:
        return self.slots.get(name)

    def chain_complete(self, name: str, _seen: Optional[set[str]] = None) -> bool:
        """True when ``name`` and every base up the chain is slotted.

        An unresolvable base makes the chain incomplete: M001 must only
        claim a win when adding ``__slots__`` actually removes the
        instance ``__dict__``.
        """
        if name in _SLOTTED_LEAVES:
            return True
        seen = _seen if _seen is not None else set()
        if name in seen:
            return True  # cycles cannot add a __dict__ the chain lacks
        seen.add(name)
        info = self.slots.get(name)
        if info is None or not info.has_slots:
            return False
        bases = self.index.bases.get(name) or {"object"}
        return all(self.chain_complete(base, seen) for base in bases)

    def bases_complete(self, name: str) -> bool:
        """True when every base chain above ``name`` is slot-complete."""
        bases = self.index.bases.get(name) or {"object"}
        return all(self.chain_complete(base) for base in bases)

    def declared_attrs(self, name: str) -> Optional[frozenset[str]]:
        """Own + inherited declared attrs; None when a base is unknown."""
        out: set[str] = set()
        seen: set[str] = set()
        frontier = [name]
        while frontier:
            current = frontier.pop()
            if current in seen or current in _SLOTTED_LEAVES:
                continue
            seen.add(current)
            info = self.slots.get(current)
            if info is None:
                return None
            out.update(info.declared)
            frontier.extend(self.index.bases.get(current, ()))
        return frozenset(out)

    def handlers_of(self, component: str) -> set[str]:
        """Names of methods of ``component`` that run as event handlers."""
        out = {
            method
            for (cls, method) in self.handler_events
            if cls == component
        }
        info = self.index.classes.get(component)
        if info is not None:
            out.update(
                name
                for name, handler in info.handlers.items()
                if handler.event_type is not None
            )
        return out

    def events_of_handler(self, component: str, method: str) -> set[str]:
        """Event type names delivered to ``component.method`` (may be empty)."""
        return set(self.handler_events.get((component, method), ()))

    def mutable_fields(self, event: str) -> set[str]:
        """Field names of ``event`` (own + inherited) annotated mutable."""
        out: set[str] = set()
        seen: set[str] = set()
        frontier = [event]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            info = self.index.classes.get(current)
            if info is None:
                continue
            for item in info.node.body:
                if isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name
                ):
                    if _annotation_mutable(item.annotation):
                        out.add(item.target.id)
            frontier.extend(self.index.bases.get(current, ()))
        return out


def build_mem_model(
    paths: Iterable[Path | str],
    config: Optional[AnalysisConfig] = None,
) -> tuple[MemModel, dict[str, ModuleInfo]]:
    """Build the model; returns it plus the scanned modules (findings set).

    Framework modules are indexed so inherited slot chains ground, but
    findings are only ever anchored in scanned files — the same contract
    as the flow and dist passes.  The flow graph (same parse cache) maps
    every subscription site in the program back to its handler method, so
    M002/M003 see subscribe-based handlers, not just ``@handles`` ones.
    """
    config = config or AnalysisConfig()
    scanned: dict[str, ModuleInfo] = {}
    modules: list[ModuleInfo] = []
    for path in iter_python_files(paths):
        if config.path_excluded(path):
            continue
        module = parse_module(path)
        if module is not None:
            modules.append(module)
            scanned[str(module.path)] = module
    index = build_index(modules, _framework_registry_paths())

    slots: dict[str, SlotInfo] = {
        name: build_slot_info(info) for name, info in index.classes.items()
    }

    graph, _ = build_flow_graph(paths, config)
    handler_events: dict[tuple[str, str], set[str]] = {}
    for consumer in graph.consumers:
        if consumer.component == "<module>":
            continue
        key = (consumer.component, consumer.handler)
        bucket = handler_events.setdefault(key, set())
        if consumer.event is not None:
            bucket.add(consumer.event)
    for name, info in index.classes.items():
        for handler in info.handlers.values():
            if handler.event_type is not None:
                handler_events.setdefault((name, handler.name), set()).add(
                    handler.event_type
                )

    return MemModel(index, slots, handler_events), scanned
