"""Memory-footprint analysis (rules ``M001``–``M006``).

The million-peer simulation (ROADMAP item 3) dies by a thousand
``__dict__``s: every unslotted event and per-peer record pays a dict
header, every handler that hoards a collection grows without bound, and
every decoded message allocates a fresh :class:`~repro.network.address.Address`
for a peer the process already knows.  This pass proves the tree free of
those costs statically, and the tracemalloc oracle
(``tests/property/test_mem_footprint.py`` + ``benchmarks/bench_footprint.py``)
keeps the verdicts honest at runtime:

- **M001** missing-``__slots__`` on an ``Event``/``Component``/``Port``
  subclass whose entire base chain is already slot-complete (recognizes
  ``@dataclass(slots=True)`` and inherited slot chains; dict-based roots
  degrade to silence because slotting a leaf under them saves nothing).
- **M002** unbounded-growth collections: a component attribute grown
  inside handlers with no discard/del/clear/pop/replacement site
  anywhere in the class.
- **M003** retained-event: a handler stores the delivered event object
  (or a mutable payload field of it) into ``self.*``.
- **M004** interning opportunity: ``Address(...)`` constructed inside a
  handler or loop where :meth:`~repro.network.address.Address.intern`
  would share one instance.
- **M005** dynamic-attr-defeats-slots: attribute creation outside
  ``__init__``/``__post_init__``/``dump_state``/``load_state`` on a
  class that is (or should be, per M001) slotted.
- **M006** heavyweight default: a mutable ``default_factory`` on an
  event field where an empty-tuple sentinel suffices.

Command line: ``python -m repro.analysis mem src examples`` (same
format/exit-code/suppression surface as the lint, flow, and dist CLIs);
also part of ``python -m repro.analysis all``.
"""

from .checks import analyze_paths
from .model import MemModel, SlotInfo, build_mem_model

__all__ = ["MemModel", "SlotInfo", "analyze_paths", "build_mem_model"]
