"""The D001–D006 checks over the extraction model.

Each check yields ``(rule, message, module, line, col, extra)`` tuples
anchored in scanned modules only; :func:`analyze_paths` applies rule
selection and ``# repro: noqa[D...]`` suppression and returns sorted
:class:`~repro.analysis.findings.Finding` records — the same driver
contract as the lint and flow passes.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator, Optional

from ..ast_lint import (
    COMPONENT_ROOT,
    EVENT_ROOT,
    ClassInfo,
    ModuleInfo,
    ProjectIndex,
    _base_name,
)
from ..config import AnalysisConfig, is_suppressed
from ..findings import Finding
from ..flow.extract import _first_param, _instance_map, _is_trigger
from ..flow.graph import build_flow_graph
from .model import DistModel, EventVerdict, build_component_model, build_dist_model

_NETWORK_ROOT = "Network"

_Raw = tuple[str, str, ModuleInfo, int, Optional[int], dict]


def _class_info(node: ast.ClassDef, module: ModuleInfo, index: ProjectIndex) -> ClassInfo:
    """The index record for ``node``, re-bound if the name was reused."""
    info = index.classes.get(node.name)
    if info is not None and info.node is node:
        return info
    rebound = ClassInfo(
        node.name, module, node, tuple(b for b in map(_base_name, node.bases) if b)
    )
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            rebound.methods[item.name] = item
    return rebound


# ------------------------------------------------------------------- D001


def _check_events(
    node: ast.ClassDef, module: ModuleInfo, index: ProjectIndex, model: DistModel
) -> Iterator[_Raw]:
    from .model import _own_fields

    info = _class_info(node, module, index)
    for fld in _own_fields(info, index):
        if fld.reason is None:
            continue
        yield (
            "D001",
            f"field {fld.name!r} of event {node.name} is annotated "
            f"{fld.annotation!r}: {fld.reason}; this payload cannot cross "
            "a process boundary",
            module,
            fld.line,
            None,
            {"event": node.name, "field": fld.name},
        )


# ------------------------------------------------- trigger payload walking


def _payload_nodes(expr: ast.expr) -> Iterator[tuple[ast.expr, bool]]:
    """Yield (node, shielded) over a payload expression.

    A node is *shielded* when it sits inside a call or a subscript: its
    value is derived (``tuple(self._view)``, ``self._view[0]``), so the
    container itself is not aliased into the payload.  Display literals
    (tuples/lists/dicts) do not shield — they embed references directly.
    """

    def visit(node: ast.expr, shielded: bool) -> Iterator[tuple[ast.expr, bool]]:
        yield node, shielded
        if isinstance(node, (ast.Call, ast.Subscript)):
            for child in ast.iter_child_nodes(node):
                yield from visit(child, True)
            return
        if isinstance(node, ast.Attribute):
            # self._view is one reference; don't re-report its .value
            return
        if isinstance(node, ast.Lambda):
            return  # the lambda itself is the finding; skip its body
        for child in ast.iter_child_nodes(node):
            yield from visit(child, shielded)

    yield from visit(expr, False)


def _event_ctor(call: ast.Call, index: ProjectIndex) -> Optional[str]:
    if len(call.args) < 1 or not isinstance(call.args[0], ast.Call):
        return None
    name = _base_name(call.args[0].func)
    if name and index.is_event(name):
        return name
    return None


def _ctor_payload_exprs(ctor: ast.Call) -> Iterator[ast.expr]:
    yield from ctor.args
    for kw in ctor.keywords:
        yield kw.value


def _lambda_captures(
    lam: ast.Lambda | ast.FunctionDef,
    selfname: Optional[str],
    loop_targets: Iterable[str],
) -> list[str]:
    """Names the closure captures that a process boundary would sever."""
    if isinstance(lam, ast.Lambda):
        params = {a.arg for a in lam.args.args + lam.args.kwonlyargs}
        body: list[ast.expr | ast.stmt] = [lam.body]
    else:
        params = {a.arg for a in lam.args.args + lam.args.kwonlyargs}
        body = list(lam.body)
    loaded: set[str] = set()
    for stmt in body:
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                loaded.add(sub.id)
    interesting = set(loop_targets)
    if selfname:
        interesting.add(selfname)
    return sorted((loaded - params) & interesting)


def _loop_target_map(method: ast.FunctionDef) -> list[tuple[set[str], set[int]]]:
    """For each loop in ``method``: (target names, ids of contained nodes)."""
    out: list[tuple[set[str], set[int]]] = []
    for node in ast.walk(method):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            targets = {
                n.id for n in ast.walk(node.target) if isinstance(n, ast.Name)
            }
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            targets = {
                n.id
                for gen in node.generators
                for n in ast.walk(gen.target)
                if isinstance(n, ast.Name)
            }
        else:
            continue
        out.append((targets, {id(sub) for sub in ast.walk(node)}))
    return out


def _loop_targets_around(
    node: ast.AST, loops: list[tuple[set[str], set[int]]]
) -> set[str]:
    found: set[str] = set()
    for targets, ids in loops:
        if id(node) in ids:
            found |= targets
    return found


# ----------------------------------------------------- D002 / D003 / D005


def _check_component_methods(
    node: ast.ClassDef,
    module: ModuleInfo,
    index: ProjectIndex,
    model: DistModel,
    module_instances: dict[str, str],
) -> Iterator[_Raw]:
    comp = model.components.get(node.name)
    info = _class_info(node, module, index)
    if comp is None or comp.file != str(module.path):
        comp = build_component_model(info, index)

    for method in info.methods.values():
        selfname = _first_param(method)
        if selfname is None:
            continue
        loops = _loop_target_map(method)
        local_defs = {
            fd.name: fd
            for fd in ast.walk(method)
            if isinstance(fd, ast.FunctionDef) and fd is not method
        }
        instances = dict(module_instances)
        instances.update(_instance_map(list(ast.walk(method)), index))

        for call in (
            n for n in ast.walk(method) if isinstance(n, ast.Call)
        ):
            fn = call.func
            if (
                isinstance(fn, ast.Attribute)
                and fn.attr == "subscribe"
                and isinstance(fn.value, ast.Name)
                and fn.value.id == selfname
                and call.args
            ):
                yield from _check_subscribe_handler(
                    call, module, selfname, loops, local_defs
                )
            elif _is_trigger(fn):
                event = _event_ctor(call, index)
                if event is None:
                    continue
                ctor = call.args[0]
                assert isinstance(ctor, ast.Call)
                yield from _check_payload(
                    ctor, event, module, selfname, comp, instances, loops
                )


def _check_subscribe_handler(
    call: ast.Call,
    module: ModuleInfo,
    selfname: str,
    loops: list[tuple[set[str], set[int]]],
    local_defs: dict[str, ast.FunctionDef],
) -> Iterator[_Raw]:
    handler = call.args[0]
    if isinstance(handler, ast.Lambda):
        captures = _lambda_captures(
            handler, selfname, _loop_targets_around(handler, loops)
        )
        detail = f" (captures {', '.join(captures)})" if captures else ""
        yield (
            "D003",
            "lambda subscribed as a handler cannot be re-established in "
            f"another process{detail}; subscribe a bound method instead",
            module,
            handler.lineno,
            handler.col_offset,
            {"captures": captures},
        )
    elif isinstance(handler, ast.Name) and handler.id in local_defs:
        fd = local_defs[handler.id]
        captures = _lambda_captures(fd, selfname, _loop_targets_around(fd, loops))
        detail = f" (captures {', '.join(captures)})" if captures else ""
        yield (
            "D003",
            f"local def {handler.id!r} subscribed as a handler cannot be "
            f"re-established in another process{detail}; use a method",
            module,
            call.lineno,
            call.col_offset,
            {"captures": captures},
        )


def _check_payload(
    ctor: ast.Call,
    event: str,
    module: ModuleInfo,
    selfname: str,
    comp,
    instances: dict[str, str],
    loops: list[tuple[set[str], set[int]]],
) -> Iterator[_Raw]:
    for arg in _ctor_payload_exprs(ctor):
        for node, shielded in _payload_nodes(arg):
            if shielded:
                continue
            if isinstance(node, ast.Lambda):
                captures = _lambda_captures(
                    node, selfname, _loop_targets_around(node, loops)
                )
                detail = f" (captures {', '.join(captures)})" if captures else ""
                yield (
                    "D003",
                    f"payload of {event}(...) embeds a lambda; closures do "
                    f"not survive a process boundary{detail}",
                    module,
                    node.lineno,
                    node.col_offset,
                    {"event": event, "captures": captures},
                )
            elif isinstance(node, ast.Name):
                if node.id == selfname:
                    yield (
                        "D005",
                        f"payload of {event}(...) carries the component "
                        "itself; shard routing needs Address indirection, "
                        "not object identity",
                        module,
                        node.lineno,
                        node.col_offset,
                        {"event": event},
                    )
                elif node.id in instances:
                    yield (
                        "D005",
                        f"payload of {event}(...) carries component "
                        f"instance {node.id!r} ({instances[node.id]}); pass "
                        "its Address instead",
                        module,
                        node.lineno,
                        node.col_offset,
                        {"event": event, "component": instances[node.id]},
                    )
            elif (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == selfname
            ):
                attr = node.attr
                if attr in comp.child_attrs:
                    yield (
                        "D005",
                        f"payload of {event}(...) carries child component "
                        f"self.{attr}; pass its Address instead",
                        module,
                        node.lineno,
                        node.col_offset,
                        {"event": event, "attr": attr},
                    )
                elif attr in comp.port_attrs:
                    yield (
                        "D005",
                        f"payload of {event}(...) carries port handle "
                        f"self.{attr}; ports are process-local runtime "
                        "objects",
                        module,
                        node.lineno,
                        node.col_offset,
                        {"event": event, "attr": attr},
                    )
                elif attr in comp.mutable_attrs:
                    yield (
                        "D002",
                        f"payload of {event}(...) aliases self.{attr} "
                        f"(mutable container assigned at line "
                        f"{comp.mutable_attrs[attr]}); sender and receiver "
                        "would share state a process boundary splits — "
                        "pass a snapshot (tuple(...)/dict(...)) instead",
                        module,
                        node.lineno,
                        node.col_offset,
                        {"event": event, "attr": attr},
                    )


# ------------------------------------------------------------------- D004


def _check_component_state(
    node: ast.ClassDef, module: ModuleInfo, index: ProjectIndex, model: DistModel
) -> Iterator[_Raw]:
    comp = model.components.get(node.name)
    if comp is None or comp.file != str(module.path):
        comp = build_component_model(_class_info(node, module, index), index)
    if comp.has_state_hooks or not comp.resource_attrs:
        return
    for attr, resource, line in comp.resource_attrs:
        yield (
            "D004",
            f"self.{attr} holds {resource} but {node.name} overrides "
            "neither dump_state nor load_state; section-2.6 state transfer "
            "cannot migrate this component across processes",
            module,
            line,
            None,
            {"component": node.name, "attr": attr, "resource": resource},
        )


# ------------------------------------------------------------------- D006


def _check_codec_coverage(
    model: DistModel,
    scanned: dict[str, ModuleInfo],
    paths: Iterable[Path | str],
    config: AnalysisConfig,
) -> Iterator[_Raw]:
    graph, _ = build_flow_graph(paths, config)
    crossing: dict[str, list] = {}
    for producer in graph.producers:
        if producer.event is None:
            continue
        if not model.index.descends_from(producer.port_type, _NETWORK_ROOT):
            continue
        crossing.setdefault(producer.event, []).append(producer)
    for event in sorted(crossing):
        if event in model.registered:
            continue
        info = model.index.classes.get(event)
        sites = crossing[event]
        if info is not None and str(info.module.path) in scanned:
            module = scanned[str(info.module.path)]
            line: int = info.node.lineno
            col: Optional[int] = info.node.col_offset
        else:
            anchored = [p for p in sites if p.file in scanned]
            if not anchored:
                continue  # event and every trigger live in framework context
            first = min(anchored, key=lambda p: (p.file, p.line))
            module = scanned[first.file]
            line, col = first.line, first.col
        yield (
            "D006",
            f"{event} crosses the Network port ({len(sites)} trigger "
            "site(s)) with no compact-codec registration; register it with "
            "@register_compact or justify the pickle fallback",
            module,
            line,
            col,
            {"event": event, "sites": len(sites)},
        )


# ----------------------------------------------------------------- driver


def analyze_paths(
    paths: Iterable[Path | str],
    config: Optional[AnalysisConfig] = None,
) -> list[Finding]:
    """Run the dist pass over files/directories; returns sorted findings."""
    config = config or AnalysisConfig()
    model, scanned = build_dist_model(paths, config)
    index = model.index

    raw: list[_Raw] = []
    for module in scanned.values():
        module_instances = _instance_map(module.tree.body, index)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if index.is_event(node.name) and node.name != EVENT_ROOT:
                raw.extend(_check_events(node, module, index, model))
            if index.is_component(node.name) and node.name != COMPONENT_ROOT:
                raw.extend(
                    _check_component_methods(
                        node, module, index, model, module_instances
                    )
                )
                raw.extend(_check_component_state(node, module, index, model))
    raw.extend(_check_codec_coverage(model, scanned, paths, config))

    findings: list[Finding] = []
    for rule_id, message, module, line, col, extra in raw:
        if not config.rule_enabled(rule_id):
            continue
        if is_suppressed(rule_id, module.line(line)):
            continue
        findings.append(
            Finding(
                rule=rule_id,
                message=message,
                file=str(module.path),
                line=line,
                col=col,
                extra=extra,
            )
        )
    findings.sort(key=lambda f: (f.file or "", f.line or 0, f.rule))
    return findings


def classify_events(
    paths: Iterable[Path | str],
    config: Optional[AnalysisConfig] = None,
) -> dict[str, EventVerdict]:
    """D001 verdict per indexed event type, pre-suppression.

    This is the static half of the round-trip oracle: every event marked
    ``wire_safe`` here must pickle round-trip byte-stably, and every event
    that does not must carry at least one reason.
    """
    model, _ = build_dist_model(paths, config)
    return {name: model.verdict(name) for name in model.event_names()}
