"""Extraction model for the distribution-readiness pass.

Everything here is derived from the shared :mod:`..ast_lint` index — no
imports of analyzed code.  The model answers four questions per class:

- events: which annotated payload fields does it carry (own + inherited),
  and does each annotation ground to something that survives pickling?
- components: which ``self`` attributes are mutable containers, which hold
  OS resources, which are child components or ports, and does the class
  override the section-2.6 state-transfer hooks?
- registrations: which event classes carry a compact-codec registration
  (``@register_compact`` or a ``register_compact(Event)`` call)?

Grounding is deliberately conservative: a bare name is only classified
through the module's import table or the project index, so a user class
that happens to be called ``Lock`` is never flagged.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional

from ..ast_lint import (
    COMPONENT_ROOT,
    EVENT_ROOT,
    ClassInfo,
    ModuleInfo,
    ProjectIndex,
    _base_name,
    _framework_registry_paths,
    build_index,
    iter_python_files,
    parse_module,
)
from ..config import AnalysisConfig

#: Dotted-name prefixes whose instances hold OS state (threads, sockets,
#: files, queues, servers).  Matched against names resolved through the
#: module's import table, never against bare identifiers.
RESOURCE_PREFIXES = (
    "threading.",
    "_thread.",
    "socket.",
    "ssl.",
    "selectors.",
    "subprocess.",
    "multiprocessing.",
    "queue.",
    "concurrent.futures.",
    "socketserver.",
    "http.server.",
    "http.client.",
    "asyncio.",
    "io.",
    "mmap.",
    "sqlite3.",
    "weakref.",
)

#: Builtins/calls that open OS resources regardless of import table.
RESOURCE_BUILTINS = frozenset({"open"})

#: Framework runtime objects that are meaningless in another process.
RUNTIME_NAMES = frozenset(
    {
        "Component",
        "ComponentCore",
        "ComponentDefinition",
        "ComponentSystem",
        "Channel",
        "Port",
        "PortCore",
        "Face",
        "Scheduler",
    }
)

#: Annotation names denoting callables/closures (never picklable by value).
CALLABLE_NAMES = frozenset(
    {
        "Callable",
        "FunctionType",
        "LambdaType",
        "MethodType",
        "Generator",
        "Coroutine",
        "Awaitable",
        "Iterator",
    }
)

#: Calls whose result is a mutable container (aliasing hazard at trigger
#: sites).  Bare builtins plus the collections constructors.
MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "bytearray", "deque", "defaultdict", "Counter", "OrderedDict"}
)


def _dotted_name(expr: ast.expr) -> Optional[str]:
    """``a.b.C`` -> ``"a.b.C"``; plain names return themselves."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _resolve_dotted(expr: ast.expr, module: ModuleInfo) -> Optional[str]:
    """Ground an annotation/call name through the module's import table.

    ``Lock`` with ``from threading import Lock`` -> ``threading.Lock``;
    ``threading.Lock`` with ``import threading`` -> ``threading.Lock``;
    an unimported bare name returns None (ungroundable -> silence).
    """
    if isinstance(expr, ast.Name):
        return module.imports.get(expr.id)
    dotted = _dotted_name(expr)
    if dotted is None:
        return None
    root, _, rest = dotted.partition(".")
    resolved_root = module.imports.get(root, root)
    return f"{resolved_root}.{rest}" if rest else resolved_root


# ----------------------------------------------------------------- events


@dataclass(frozen=True)
class FieldModel:
    """One annotated payload field of an event class."""

    event: str  # declaring class (may be a base of the queried event)
    name: str
    annotation: str
    reason: Optional[str]  # why unserializable; None = clean/ungroundable
    file: str
    line: int


@dataclass(frozen=True)
class EventVerdict:
    """The D001 verdict for one event type, pre-suppression.

    ``wire_safe`` ignores ``# repro: noqa[D001]`` comments on purpose: a
    suppressed finding silences the report, but the event still cannot
    cross a process boundary, so the round-trip oracle must not try.
    """

    name: str
    wire_safe: bool
    reasons: tuple[str, ...] = ()


def _annotation_leaves(ann: ast.expr) -> Iterable[ast.expr]:
    """Yield the groundable name leaves of an annotation expression."""
    if isinstance(ann, ast.Constant):
        if isinstance(ann.value, str):
            try:
                parsed = ast.parse(ann.value, mode="eval")
            except SyntaxError:
                return
            yield from _annotation_leaves(parsed.body)
        return
    if isinstance(ann, (ast.Name, ast.Attribute)):
        yield ann
        return
    if isinstance(ann, ast.Subscript):
        yield from _annotation_leaves(ann.value)
        yield from _annotation_leaves(ann.slice)
        return
    if isinstance(ann, ast.BinOp):  # X | Y unions
        yield from _annotation_leaves(ann.left)
        yield from _annotation_leaves(ann.right)
        return
    if isinstance(ann, (ast.Tuple, ast.List)):
        for elt in ann.elts:
            yield from _annotation_leaves(elt)
        return
    if isinstance(ann, ast.Lambda):
        yield ann  # a lambda in an annotation is its own finding


def classify_annotation(
    ann: ast.expr, module: ModuleInfo, index: ProjectIndex
) -> Optional[str]:
    """Reason the annotated type cannot cross a process boundary, or None."""
    for leaf in _annotation_leaves(ann):
        if isinstance(leaf, ast.Lambda):
            return "a lambda expression"
        bare = _base_name(leaf)
        dotted = _resolve_dotted(leaf, module)
        if dotted is not None:
            for prefix in RESOURCE_PREFIXES:
                if dotted.startswith(prefix) or dotted == prefix.rstrip("."):
                    return f"OS resource type {dotted}"
        if bare is None:
            continue
        if bare in RUNTIME_NAMES:
            return f"framework runtime object {bare}"
        if bare in CALLABLE_NAMES:
            return f"callable type {bare}"
        if index.is_component(bare):
            return f"component reference ({bare})"
        if index.is_port_type(bare):
            return f"port reference ({bare})"
    return None


def _own_fields(info: ClassInfo, index: ProjectIndex) -> list[FieldModel]:
    """Annotated fields declared by one class (not its bases).

    Dataclass events declare fields as class-body ``AnnAssign``; plain
    events (e.g. :class:`~repro.core.fault.Fault`) annotate ``__init__``
    parameters instead, so those count when the body declares nothing.
    """
    out: list[FieldModel] = []
    path = str(info.module.path)
    for item in info.node.body:
        if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
            if item.target.id.startswith("_") or item.target.id == "responds_to":
                continue
            out.append(
                FieldModel(
                    event=info.name,
                    name=item.target.id,
                    annotation=ast.unparse(item.annotation),
                    reason=classify_annotation(item.annotation, info.module, index),
                    file=path,
                    line=item.lineno,
                )
            )
    if out:
        return out
    init = info.methods.get("__init__")
    if init is None:
        return out
    for arg in init.args.args[1:] + init.args.kwonlyargs:
        if arg.annotation is None:
            continue
        out.append(
            FieldModel(
                event=info.name,
                name=arg.arg,
                annotation=ast.unparse(arg.annotation),
                reason=classify_annotation(arg.annotation, info.module, index),
                file=path,
                line=arg.lineno,
            )
        )
    return out


# ------------------------------------------------------------- components


@dataclass
class ComponentModel:
    """Distribution-relevant view of one component class."""

    name: str
    file: str
    line: int
    #: self attribute -> line of the first mutable-container assignment
    mutable_attrs: dict[str, int] = field(default_factory=dict)
    #: (attr, dotted resource constructor, assignment line)
    resource_attrs: list[tuple[str, str, int]] = field(default_factory=list)
    #: attrs assigned from ``self.create(...)`` (child component handles)
    child_attrs: set[str] = field(default_factory=set)
    #: attrs assigned from provides/requires (port handles)
    port_attrs: set[str] = field(default_factory=set)
    has_state_hooks: bool = False


def _is_mutable_value(value: ast.expr) -> bool:
    if isinstance(
        value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
    ):
        return True
    if isinstance(value, ast.Call):
        name = _base_name(value.func)
        return name in MUTABLE_CALLS
    return False


def _resource_call(value: ast.expr, module: ModuleInfo) -> Optional[str]:
    """Dotted name of an OS-resource constructor call, or None."""
    if not isinstance(value, ast.Call):
        return None
    bare = _base_name(value.func)
    if bare in RESOURCE_BUILTINS and isinstance(value.func, ast.Name):
        return bare
    dotted = _resolve_dotted(value.func, module)
    if dotted is None:
        return None
    for prefix in RESOURCE_PREFIXES:
        if dotted.startswith(prefix):
            return dotted
    return None


def build_component_model(
    info: ClassInfo, index: ProjectIndex
) -> ComponentModel:
    model = ComponentModel(
        name=info.name,
        file=str(info.module.path),
        line=info.node.lineno,
        has_state_hooks=(
            index.lookup_method(info.name, "dump_state") is not None
            and index.lookup_method(info.name, "load_state") is not None
        ),
    )
    for method in info.methods.values():
        selfname = method.args.args[0].arg if method.args.args else None
        if selfname is None:
            continue
        for stmt in ast.walk(method):
            targets: list[ast.expr]
            value: Optional[ast.expr]
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            else:
                continue
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == selfname
                ):
                    continue
                attr = target.attr
                if _is_mutable_value(value):
                    model.mutable_attrs.setdefault(attr, stmt.lineno)
                resource = _resource_call(value, info.module)
                if resource is not None:
                    model.resource_attrs.append((attr, resource, stmt.lineno))
                if isinstance(value, ast.Call):
                    fn = value.func
                    if (
                        isinstance(fn, ast.Attribute)
                        and isinstance(fn.value, ast.Name)
                        and fn.value.id == selfname
                    ):
                        if fn.attr == "create":
                            model.child_attrs.add(attr)
                        elif fn.attr in ("provides", "requires"):
                            model.port_attrs.add(attr)
    return model


# ------------------------------------------------------------------ model


@dataclass
class DistModel:
    """Everything the D checks need, shared across rules."""

    index: ProjectIndex
    #: event class name -> own annotated fields (framework classes included)
    event_fields: dict[str, list[FieldModel]]
    #: component class name -> model (framework classes included)
    components: dict[str, ComponentModel]
    #: event class names with a compact-codec registration anywhere
    registered: set[str]

    def fields_of(self, event: str) -> list[FieldModel]:
        """Own + inherited fields of ``event``, base classes first."""
        chain: list[str] = []
        seen: set[str] = set()
        frontier = [event]
        while frontier:
            current = frontier.pop(0)
            if current in seen or current == EVENT_ROOT:
                continue
            seen.add(current)
            chain.append(current)
            frontier.extend(self.index.bases.get(current, ()))
        out: list[FieldModel] = []
        for name in reversed(chain):
            out.extend(self.event_fields.get(name, ()))
        return out

    def verdict(self, event: str) -> EventVerdict:
        reasons = tuple(
            f"field {f.name!r} ({f.event}.{f.name}: {f.annotation}): {f.reason}"
            for f in self.fields_of(event)
            if f.reason is not None
        )
        return EventVerdict(event, wire_safe=not reasons, reasons=reasons)

    def event_names(self) -> list[str]:
        """All indexed classes descending from ``Event`` (sorted)."""
        return sorted(
            name
            for name in self.index.classes
            if name != EVENT_ROOT and self.index.is_event(name)
        )


def _scan_registrations(module: ModuleInfo, registered: set[str]) -> None:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ClassDef):
            for deco in node.decorator_list:
                target = deco.func if isinstance(deco, ast.Call) else deco
                if _base_name(target) == "register_compact":
                    registered.add(node.name)
        elif isinstance(node, ast.Call):
            if _base_name(node.func) == "register_compact" and node.args:
                name = _base_name(node.args[0])
                if name:
                    registered.add(name)


def build_dist_model(
    paths: Iterable[Path | str],
    config: Optional[AnalysisConfig] = None,
) -> tuple[DistModel, dict[str, ModuleInfo]]:
    """Build the model; returns it plus the scanned modules (findings set).

    Framework modules (the installed ``repro`` package) are indexed and
    modelled so inherited fields and base classes ground, but findings are
    only ever anchored in scanned files — same contract as the flow pass.
    """
    config = config or AnalysisConfig()
    scanned: dict[str, ModuleInfo] = {}
    modules: list[ModuleInfo] = []
    for path in iter_python_files(paths):
        if config.path_excluded(path):
            continue
        module = parse_module(path)
        if module is not None:
            modules.append(module)
            scanned[str(module.path)] = module
    index = build_index(modules, _framework_registry_paths())

    all_modules = list(modules)
    seen_paths = {module.path.resolve() for module in modules}
    for path in iter_python_files(_framework_registry_paths()):
        if path.resolve() in seen_paths:
            continue
        module = parse_module(path)
        if module is not None:
            all_modules.append(module)

    event_fields: dict[str, list[FieldModel]] = {}
    components: dict[str, ComponentModel] = {}
    registered: set[str] = set()
    for name, info in index.classes.items():
        if name == EVENT_ROOT or name == COMPONENT_ROOT:
            continue
        if index.is_event(name):
            event_fields[name] = _own_fields(info, index)
        if index.is_component(name):
            components[name] = build_component_model(info, index)
    for module in all_modules:
        _scan_registrations(module, registered)

    return DistModel(index, event_fields, components, registered), scanned
