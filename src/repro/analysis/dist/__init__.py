"""Distribution-readiness analysis (rules ``D001``–``D006``).

The thread-based runtime shares one address space, so a payload can smuggle
a lock, a component reference, or an aliased ``self.<mutable>`` across a
channel and nothing breaks — until ROADMAP items 1–2 split the
:class:`~repro.core.system.ComponentSystem` across processes.  This pass
proves, statically and whole-program, that every event and every component
can survive a process boundary:

- ``D001`` unserializable-event-payload — event fields typed as runtime
  objects (components, ports, channels), OS resources, or callables.
- ``D002`` isolation-escape — a trigger site passes ``self.<mutable>`` by
  reference, so sender and receiver alias state a boundary would split.
- ``D003`` closure-capture — lambdas/local defs subscribed as handlers or
  embedded in payloads, capturing component state or loop variables.
- ``D004`` non-transferable-state — component state holds an OS resource
  and the class has no section-2.6 ``dump_state``/``load_state`` override.
- ``D005`` identity-leak — payloads carrying direct component/port
  references where shard routing needs :class:`~repro.network.address.Address`.
- ``D006`` codec-coverage — events crossing ``Network`` ports with no
  compact-codec registration (they ride the pickle fallback at wire speed).

Like the lint and flow passes this is name-based and degrades to silence:
a name the index cannot ground is never reported.  The pass shares the
AST parse cache, and :func:`classify_events` exposes the D001 verdicts so
the round-trip property suite can pin static judgement to the runtime
pickle codec (``tests/property/test_dist_roundtrip.py``).

Command line: ``python -m repro.analysis dist src examples``.
"""

from .checks import analyze_paths, classify_events
from .model import DistModel, EventVerdict, build_dist_model

__all__ = [
    "DistModel",
    "EventVerdict",
    "analyze_paths",
    "build_dist_model",
    "classify_events",
]
