"""repro — Kompics in Python.

A from-scratch reproduction of *Message-Passing Concurrency for Scalable,
Stateful, Reconfigurable Middleware* (Arad, Dowling, Haridi — MIDDLEWARE
2012): the Kompics component model, its multi-core and deterministic-
simulation runtimes, a reusable distributed-protocol library, and the CATS
linearizable key-value store case study.

Quickstart::

    from repro import ComponentDefinition, ComponentSystem, handles

    class Hello(ComponentDefinition):
        def __init__(self):
            super().__init__()
            self.subscribe(self.on_start, self.control)

        @handles(Start)
        def on_start(self, event):
            print("hello from a component")

    system = ComponentSystem()
    system.bootstrap(Hello)
    system.await_quiescence()
    system.shutdown()
"""

from .core import (
    Channel,
    Component,
    ComponentDefinition,
    ControlPort,
    Direction,
    Event,
    Fault,
    Init,
    KompicsError,
    LifecycleState,
    NEGATIVE,
    POSITIVE,
    Port,
    PortFace,
    PortType,
    Start,
    Stop,
    handles,
    replace_component,
)
from .runtime import (
    ComponentSystem,
    ManualScheduler,
    Scheduler,
    SingleThreadScheduler,
    WorkStealingScheduler,
)

__version__ = "1.0.0"

# Opt-in runtime sanitizer (REPRO_SANITIZE=1): imported lazily so the
# default path never loads the analysis package.
import os as _os

if _os.environ.get("REPRO_SANITIZE", "").strip():
    from .analysis.sanitizer import activate_from_env as _activate_sanitizer

    _activate_sanitizer()

__all__ = [
    "Channel",
    "Component",
    "ComponentDefinition",
    "ComponentSystem",
    "ControlPort",
    "Direction",
    "Event",
    "Fault",
    "Init",
    "KompicsError",
    "LifecycleState",
    "ManualScheduler",
    "NEGATIVE",
    "POSITIVE",
    "Port",
    "PortFace",
    "PortType",
    "Scheduler",
    "SingleThreadScheduler",
    "Start",
    "Stop",
    "WorkStealingScheduler",
    "__version__",
    "handles",
    "replace_component",
]
