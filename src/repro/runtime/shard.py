"""Multi-process shard harness: one component tree, N OS processes.

The paper's deployment argument (section 5) is that a Kompics system
scales by *sharding*: the root's create-subtrees are placed onto separate
schedulers — here, separate OS processes — and every message that crosses
the shard cut travels through the Network abstraction instead of by
object reference.  This module is the runtime oracle for the static
``par`` pass (rules P001–P006): it makes the shard cut *real*, so the
hazards the pass predicts (process-divergent module state, identity
affinity, codec gaps) become observable behaviour differences.

Shape:

- A coordinator (the parent process) spawns one worker per
  :class:`ShardSpec`.  Workers are fresh ``spawn`` interpreters — no
  inherited module state — connected to the coordinator by a duplex pipe.
- Inside a worker, a :func:`ShardSpec.builder` (a ``"module:callable"``
  spec, resolved by import) bootstraps components onto a per-worker
  ComponentSystem whose Network is a :class:`ShardNetwork`: deliveries to
  addresses in the same worker go by reference (exactly the in-process
  LoopbackNetwork semantics), deliveries to any other address are framed
  with the compact codec and routed through the coordinator.
- The coordinator's router thread forwards frames by destination address
  to the owning worker, or to parent-side adapters (see
  :class:`GatewayNetwork`) so a client plane in the coordinator process
  can talk to the sharded tree through the same Network abstraction.

The pipe protocol is deliberately tiny — tagged tuples::

    child -> parent: ("ready", addresses), ("msg", dest, frame),
                     ("result", name, ok, payload), ("stopped",), ("error", text)
    parent -> child: ("msg", frame), ("call", name, args), ("stop",)

``("call", ...)`` gives tests and benchmarks named observables inside a
worker (joined flags, planted-fixture counters, trace fingerprints)
without widening the transport.
"""

from __future__ import annotations

import importlib
import multiprocessing
import multiprocessing.connection
import queue
import threading
import traceback
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..core.component import ComponentDefinition
from ..core.handler import handles
from ..network.address import Address
from ..network.compact import CompactCodec
from ..network.message import Message, Network
from ..network.serialization import FrameCodec

__all__ = [
    "ShardSpec",
    "ShardCluster",
    "ShardHub",
    "ShardNetwork",
    "GatewayNetwork",
    "WorkerContext",
    "install_shard_hub",
    "resolve_spec",
]


def _default_codec() -> FrameCodec:
    """Cross-shard wire format: compact codec under the standard frame."""
    return FrameCodec(codec=CompactCodec())


def resolve_spec(spec: str) -> Callable:
    """Resolve a ``"module:callable"`` builder spec by import."""
    module_name, _, attr = spec.partition(":")
    if not module_name or not attr:
        raise ValueError(f"builder spec must be 'module:callable', got {spec!r}")
    obj = importlib.import_module(module_name)
    for part in attr.split("."):
        obj = getattr(obj, part)
    return obj


@dataclass(frozen=True)
class ShardSpec:
    """One worker's share of the tree.

    ``builder`` is a ``"module:callable"`` spec resolved *in the worker*
    (the callable itself never crosses the pipe); it is invoked as
    ``builder(context, *args)`` with a :class:`WorkerContext`.  ``args``
    must be picklable.
    """

    builder: str
    args: tuple = ()


# --------------------------------------------------------------- child side


_SERVICE_KEY = "shard_hub"


class ShardHub:
    """Per-worker routing table: local by reference, remote via the pipe."""

    def __init__(self, sender: Callable[[Address, bytes], None],
                 codec: Optional[FrameCodec] = None) -> None:
        self._routes: dict[Address, "ShardNetwork"] = {}
        self._lock = threading.Lock()
        self._sender = sender
        self._codec = codec if codec is not None else _default_codec()
        self.delivered_local = 0
        self.sent_remote = 0
        self.received_remote = 0
        self.dropped = 0

    def register(self, address: Address, adapter: "ShardNetwork") -> None:
        with self._lock:
            self._routes[address] = adapter

    def unregister(self, address: Address) -> None:
        with self._lock:
            self._routes.pop(address, None)

    @property
    def addresses(self) -> tuple[Address, ...]:
        with self._lock:
            return tuple(self._routes)

    def route(self, message: Message) -> None:
        """Called from a sender's handler thread inside this worker."""
        with self._lock:
            adapter = self._routes.get(message.destination)
        if adapter is not None:
            # Same-shard: by reference, the in-process semantics.
            self.delivered_local += 1
            adapter.deliver(message)
            return
        # Cross-shard: through the wire format, via the coordinator.
        self.sent_remote += 1
        self._sender(message.destination, self._codec.frame(message))

    def deliver_remote(self, data: bytes) -> None:
        """Called by the worker's pipe thread for an inbound frame."""
        message = self._codec.unframe(data)
        with self._lock:
            adapter = self._routes.get(message.destination)
        if adapter is None:
            # Mirrors LoopbackHub: a datagram to a dead host drops silently.
            self.dropped += 1
            return
        self.received_remote += 1
        adapter.deliver(message)


def install_shard_hub(system, sender: Callable[[Address, bytes], None],
                      codec: Optional[FrameCodec] = None) -> ShardHub:
    """Create and register this worker's hub as a system service."""
    hub = ShardHub(sender, codec=codec)
    system.register_service(_SERVICE_KEY, hub)
    return hub


class ShardNetwork(ComponentDefinition):
    """Provides Network for one node address within a shard worker."""

    def __init__(self, address: Address) -> None:
        super().__init__()
        self.address = address
        self.port = self.provides(Network)
        hub = self.system.services.get(_SERVICE_KEY)
        if hub is None:
            raise RuntimeError(
                "no ShardHub service: call install_shard_hub(system, ...) "
                "before bootstrapping ShardNetwork components"
            )
        self._hub: ShardHub = hub
        self._hub.register(address, self)
        self.sent = 0
        self.received = 0
        self.subscribe(self.on_send, self.port)

    @handles(Message)
    def on_send(self, message: Message) -> None:
        self.sent += 1
        self._hub.route(message)

    def deliver(self, message: Message) -> None:
        """Called by the hub (from a handler or the worker's pipe thread)."""
        self.received += 1
        self.trigger(message, self.port)

    def tear_down(self) -> None:
        self._hub.unregister(self.address)


class WorkerContext:
    """Child-side harness state: the pipe, the hub, named observables.

    A builder typically does::

        def my_worker(ctx, *args):
            system = ctx.make_system()
            ... system.bootstrap(...) with ShardNetwork components ...
            ctx.register_call("observable", lambda: ...)
    """

    def __init__(self, conn, index: int) -> None:
        self.conn = conn
        self.index = index
        self._send_lock = threading.Lock()
        self._systems: list = []
        self._calls: dict[str, Callable] = {}
        self.hub: Optional[ShardHub] = None

    # -- builder API

    def make_system(self, **kwargs):
        """A real-time ComponentSystem with this worker's ShardHub installed."""
        from .system import ComponentSystem

        kwargs.setdefault("name", f"shard-{self.index}")
        system = ComponentSystem(**kwargs)
        self.hub = install_shard_hub(system, self.send_frame)
        self._systems.append(system)
        return system

    def track(self, system) -> None:
        """Register an externally-built system for shutdown on stop."""
        self._systems.append(system)

    def register_call(self, name: str, fn: Callable) -> None:
        """Expose a named observable the coordinator can invoke."""
        self._calls[name] = fn

    def send_frame(self, dest: Address, data: bytes) -> None:
        self._send(("msg", dest, data))

    # -- harness plumbing

    def _send(self, payload: tuple) -> None:
        with self._send_lock:
            self.conn.send(payload)

    def announce_ready(self) -> None:
        addresses = self.hub.addresses if self.hub is not None else ()
        self._send(("ready", tuple(addresses)))

    def serve(self) -> None:
        """Answer the pipe until the coordinator says stop."""
        while True:
            payload = self.conn.recv()
            tag = payload[0]
            if tag == "msg":
                if self.hub is not None:
                    self.hub.deliver_remote(payload[1])
            elif tag == "call":
                _, name, args = payload
                try:
                    result = self._calls[name](*args)
                    self._send(("result", name, True, result))
                except Exception:
                    self._send(("result", name, False, traceback.format_exc()))
            elif tag == "stop":
                break
        for system in self._systems:
            try:
                system.shutdown()
            except Exception:
                pass
        self._send(("stopped",))


def _shard_worker(conn, index: int, spec: ShardSpec) -> None:
    """Worker process entry point (must be importable for spawn)."""
    context = WorkerContext(conn, index)
    try:
        builder = resolve_spec(spec.builder)
        builder(context, *spec.args)
        context.announce_ready()
        context.serve()
    except EOFError:
        pass  # coordinator died; exit quietly
    except Exception:
        try:
            conn.send(("error", traceback.format_exc()))
        except (OSError, BrokenPipeError):
            pass


# -------------------------------------------------------------- parent side


class ShardWorkerError(RuntimeError):
    """A worker failed to build or a call inside it raised."""


@dataclass
class _WorkerHandle:
    process: multiprocessing.process.BaseProcess
    conn: multiprocessing.connection.Connection
    ready: threading.Event = field(default_factory=threading.Event)
    addresses: tuple[Address, ...] = ()
    results: "queue.Queue[tuple[str, bool, object]]" = field(
        default_factory=queue.Queue
    )
    call_lock: threading.Lock = field(default_factory=threading.Lock)
    send_lock: threading.Lock = field(default_factory=threading.Lock)
    error: Optional[str] = None
    stopped: bool = False


class ShardCluster:
    """Coordinator for N shard workers plus parent-side gateway adapters."""

    def __init__(self, specs: list[ShardSpec],
                 codec: Optional[FrameCodec] = None,
                 start_method: str = "spawn") -> None:
        if not specs:
            raise ValueError("a ShardCluster needs at least one ShardSpec")
        self._codec = codec if codec is not None else _default_codec()
        ctx = multiprocessing.get_context(start_method)
        self._workers: list[_WorkerHandle] = []
        self._owner: dict[Address, int] = {}
        self._local: dict[Address, Callable[[Message], None]] = {}
        self._routes_lock = threading.Lock()
        self._closed = False
        self.dropped = 0
        for index, spec in enumerate(specs):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            process = ctx.Process(
                target=_shard_worker,
                args=(child_conn, index, spec),
                name=f"shard-worker-{index}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._workers.append(_WorkerHandle(process=process, conn=parent_conn))
        self._router = threading.Thread(
            target=self._route_loop, name="shard-router", daemon=True
        )
        self._router.start()

    # ------------------------------------------------------------- routing

    def _route_loop(self) -> None:
        conns = {worker.conn: worker for worker in self._workers}
        while conns and not self._closed:
            try:
                readable = multiprocessing.connection.wait(list(conns), timeout=0.2)
            except OSError:
                break
            for conn in readable:
                worker = conns[conn]
                try:
                    payload = conn.recv()
                except (EOFError, OSError):
                    del conns[conn]
                    if not worker.stopped and worker.error is None:
                        worker.error = "worker pipe closed unexpectedly"
                        worker.ready.set()
                    continue
                self._dispatch(worker, payload)

    def _dispatch(self, worker: _WorkerHandle, payload: tuple) -> None:
        tag = payload[0]
        if tag == "msg":
            _, dest, data = payload
            self._route_frame(dest, data)
        elif tag == "ready":
            worker.addresses = payload[1]
            index = self._workers.index(worker)
            with self._routes_lock:
                for address in payload[1]:
                    self._owner[address] = index
            worker.ready.set()
        elif tag == "result":
            _, name, ok, value = payload
            worker.results.put((name, ok, value))
        elif tag == "error":
            worker.error = payload[1]
            worker.ready.set()
        elif tag == "stopped":
            worker.stopped = True

    def _route_frame(self, dest: Address, data: bytes) -> None:
        with self._routes_lock:
            index = self._owner.get(dest)
            deliver = self._local.get(dest)
        if index is not None:
            worker = self._workers[index]
            with worker.send_lock:
                worker.conn.send(("msg", data))
        elif deliver is not None:
            deliver(self._codec.unframe(data))
        else:
            self.dropped += 1

    # ---------------------------------------------------------- parent API

    def register_local(self, address: Address,
                       deliver: Callable[[Message], None]) -> None:
        """Claim an address for the coordinator process (a client plane)."""
        with self._routes_lock:
            self._local[address] = deliver

    def unregister_local(self, address: Address) -> None:
        with self._routes_lock:
            self._local.pop(address, None)

    def send_message(self, message: Message) -> None:
        """Route a coordinator-side message into the cluster."""
        self._route_frame(message.destination, self._codec.frame(message))

    def owner_of(self, address: Address) -> Optional[int]:
        with self._routes_lock:
            return self._owner.get(address)

    def wait_ready(self, timeout: float = 60.0) -> None:
        """Block until every worker announced its addresses (or errored)."""
        for index, worker in enumerate(self._workers):
            if not worker.ready.wait(timeout):
                raise TimeoutError(f"shard worker {index} not ready")
            if worker.error is not None:
                raise ShardWorkerError(
                    f"shard worker {index} failed:\n{worker.error}"
                )

    def call(self, worker_index: int, name: str, *args,
             timeout: float = 60.0):
        """Invoke a named observable inside a worker and return its value."""
        worker = self._workers[worker_index]
        with worker.call_lock:
            with worker.send_lock:
                worker.conn.send(("call", name, args))
            try:
                got_name, ok, value = worker.results.get(timeout=timeout)
            except queue.Empty:
                if worker.error is not None:
                    raise ShardWorkerError(
                        f"shard worker {worker_index} failed:\n{worker.error}"
                    ) from None
                raise TimeoutError(
                    f"call {name!r} on worker {worker_index} timed out"
                ) from None
        if got_name != name:
            raise ShardWorkerError(
                f"out-of-order result: asked {name!r}, got {got_name!r}"
            )
        if not ok:
            raise ShardWorkerError(
                f"call {name!r} on worker {worker_index} raised:\n{value}"
            )
        return value

    @property
    def workers(self) -> int:
        return len(self._workers)

    def close(self, timeout: float = 10.0) -> None:
        """Stop workers, join processes, stop the router thread."""
        if self._closed:
            return
        for worker in self._workers:
            try:
                with worker.send_lock:
                    worker.conn.send(("stop",))
            except (OSError, BrokenPipeError):
                pass
        for worker in self._workers:
            worker.process.join(timeout)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout)
        self._closed = True
        self._router.join(timeout)
        for worker in self._workers:
            worker.conn.close()

    def __enter__(self) -> "ShardCluster":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class GatewayNetwork(ComponentDefinition):
    """Provides Network for a coordinator-side address.

    The parent-process twin of :class:`ShardNetwork`: outbound messages
    are framed and routed into the cluster; inbound frames addressed to
    this address are decoded by the router thread and triggered here.
    """

    def __init__(self, address: Address, cluster: ShardCluster) -> None:
        super().__init__()
        self.address = address
        self.port = self.provides(Network)
        self._cluster = cluster
        self._cluster.register_local(address, self.deliver)
        self.sent = 0
        self.received = 0
        self.subscribe(self.on_send, self.port)

    @handles(Message)
    def on_send(self, message: Message) -> None:
        self.sent += 1
        self._cluster.send_message(message)

    def deliver(self, message: Message) -> None:
        """Called by the cluster router thread."""
        self.received += 1
        self.trigger(message, self.port)

    def tear_down(self) -> None:
        self._cluster.unregister_local(self.address)
