"""Clock services: the time source components must use.

Component code never reads ``time.time()`` directly; it calls
``self.now()``, which resolves to the system's clock.  Swapping the clock
(production monotonic time vs. simulated virtual time) is how the same
component code runs unchanged in both execution modes — the paper achieves
this with bytecode instrumentation; we achieve it with dependency injection.
"""

from __future__ import annotations

import abc
import time


class Clock(abc.ABC):
    """A source of the current time, in seconds."""

    @abc.abstractmethod
    def now(self) -> float:
        """Current time in (fractional) seconds."""


class MonotonicClock(Clock):
    """Production clock: monotonic seconds since the clock was created."""

    def __init__(self) -> None:
        self._origin = time.monotonic()

    def now(self) -> float:
        return time.monotonic() - self._origin


class WallClock(Clock):
    """Production clock reporting POSIX wall-clock seconds."""

    def now(self) -> float:
        return time.time()


class VirtualClock(Clock):
    """Simulation clock: advanced explicitly by the simulation scheduler."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = start

    def now(self) -> float:
        return self._now

    def advance_to(self, instant: float) -> None:
        if instant < self._now:
            raise ValueError(
                f"virtual time cannot move backwards ({instant} < {self._now})"
            )
        self._now = instant
