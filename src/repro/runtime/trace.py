"""Execution tracing: observe every handler execution in a system.

The paper leans on two observability mechanisms — whole-system monitoring
(section 4.1) and reproducible simulation for *stepped debugging* (section
3).  A :class:`Tracer` complements both: attached to a ComponentSystem it
records ``(time, component, event type)`` for every executed work item,
giving deterministic, diffable execution traces in simulation and
best-effort traces in production.

``record`` is safe under concurrent work-stealing workers: appends and the
``recorded``/``dropped`` counters are serialized by a lock, so counts are
exact and no entry is lost to a torn read-modify-write.

Usage::

    tracer = Tracer(capacity=10_000)
    system.tracer = tracer              # or simulation.system.tracer = ...
    ...
    for entry in tracer.entries:
        print(entry)
    tracer.summary()                    # {event type name: count}
"""

from __future__ import annotations

import hashlib
import threading
from collections import Counter, deque
from dataclasses import dataclass
from typing import Callable, Optional


@dataclass(frozen=True, slots=True)
class TraceEntry:
    """One executed event."""

    time: float
    component: str
    event_type: str

    def __str__(self) -> str:
        return f"[{self.time:12.6f}] {self.component:<30} {self.event_type}"


class Tracer:
    """Bounded in-memory trace of handler executions."""

    def __init__(
        self,
        capacity: int = 100_000,
        event_filter: Optional[Callable[[str, str], bool]] = None,
    ) -> None:
        self.entries: deque[TraceEntry] = deque(maxlen=capacity)
        self.event_filter = event_filter
        self.recorded = 0
        self.dropped = 0
        self._lock = threading.Lock()

    def record(self, time: float, component: str, event_type: str) -> None:
        if self.event_filter is not None and not self.event_filter(
            component, event_type
        ):
            with self._lock:
                self.dropped += 1
            return
        with self._lock:
            self.recorded += 1
            self.entries.append(TraceEntry(time, component, event_type))

    def summary(self) -> dict[str, int]:
        """Event-type histogram of the retained trace."""
        return dict(Counter(entry.event_type for entry in self.entries))

    def by_component(self) -> dict[str, int]:
        return dict(Counter(entry.component for entry in self.entries))

    def fingerprint(self) -> str:
        """Stable, order-sensitive digest of the retained trace.

        A blake2b hex digest over a canonical encoding of every entry:
        independent of ``PYTHONHASHSEED`` and of the process, so two runs —
        or two *machines* — can compare determinism-check fingerprints
        byte-for-byte.  ``repr`` of a float is exact, so virtual-time
        differences down to the last ulp change the digest.
        """
        digest = hashlib.blake2b(digest_size=16)
        for entry in self.entries:
            digest.update(
                f"{entry.time!r}|{entry.component}|{entry.event_type}\n".encode()
            )
        return digest.hexdigest()

    def fingerprint_fast(self) -> int:
        """Order-sensitive ``hash()`` of the retained trace.

        Cheaper than :meth:`fingerprint` but salted by ``PYTHONHASHSEED``:
        only comparable within one process.  Prefer :meth:`fingerprint`
        for determinism checks.
        """
        return hash(tuple((e.time, e.component, e.event_type) for e in self.entries))

    def clear(self) -> None:
        with self._lock:
            self.entries.clear()
            self.recorded = 0
            self.dropped = 0
