"""The scheduler interface: component behaviour decoupled from execution.

The paper's key architectural decision (section 3): the component model
admits *pluggable* schedulers, so the same unchanged component code runs
under parallel multi-core execution, deterministic simulation, or manual
stepping in tests.  Schedulers receive components that transitioned from
idle to ready and must eventually call
:meth:`~repro.core.component.ComponentCore.execute` on them, requeueing
while the component stays ready.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..core.component import ComponentCore
    from .system import ComponentSystem


class Scheduler(abc.ABC):
    """Executes ready components; one event per component per slot by default."""

    def __init__(self, throughput: int = 1) -> None:
        #: events executed per component per scheduling slot (paper: 1).
        self.throughput = throughput
        self.system: "ComponentSystem | None" = None

    def attach(self, system: "ComponentSystem") -> None:
        """Bind this scheduler to a component system (called once)."""
        self.system = system

    @abc.abstractmethod
    def schedule(self, component: "ComponentCore") -> None:
        """A component transitioned idle -> ready; execute it eventually."""

    def start(self) -> None:
        """Begin executing (spawn workers, if any)."""

    def shutdown(self, wait: bool = True) -> None:
        """Stop executing; drop components still queued."""


class ManualScheduler(Scheduler):
    """Deterministic single-threaded scheduler driven by explicit calls.

    Ready components are executed in FIFO order by
    :meth:`run_to_quiescence`, giving fully reproducible executions.  The
    deterministic simulation runtime builds on this scheduler; unit tests
    use it to step systems without threads.
    """

    def __init__(self, throughput: int = 1) -> None:
        super().__init__(throughput)
        from collections import deque

        self._ready = deque()
        #: Optional ready-component chooser (schedule exploration): called
        #: with the sequence of ready components, returns the index of the
        #: one to execute next.  None (the default) keeps FIFO order.
        self.picker = None

    def schedule(self, component: "ComponentCore") -> None:
        self._ready.append(component)

    @property
    def ready_count(self) -> int:
        return len(self._ready)

    def step(self) -> bool:
        """Execute one scheduling slot; returns False when nothing is ready."""
        if not self._ready:
            return False
        picker = self.picker
        if picker is None or len(self._ready) == 1:
            component = self._ready.popleft()
        else:
            index = picker(self._ready)
            component = self._ready[index]
            del self._ready[index]
        if component.execute(self.throughput):
            self._ready.append(component)
        return True

    def run_to_quiescence(self, max_slots: int | None = None) -> int:
        """Run until no component is ready; returns slots executed."""
        slots = 0
        while self._ready and (max_slots is None or slots < max_slots):
            self.step()
            slots += 1
        return slots

    def drain(self) -> int:
        """Quiescence fast path: FIFO, throughput 1, no picker, inlined.

        Executes exactly the slots :meth:`run_to_quiescence` would (it
        falls back to it when a picker or a non-default throughput is
        installed), but through the lock-light single-threaded
        :meth:`~repro.core.component.ComponentCore.execute_slot` — the
        simulation loop calls this once per timed dispatch, so the slot
        machinery is the hottest code in the simulator.
        """
        if self.picker is not None or self.throughput != 1:
            return self.run_to_quiescence()
        ready = self._ready
        slots = 0
        while ready:
            component = ready.popleft()
            if component.execute_slot():
                ready.append(component)
            slots += 1
        return slots
