"""Multi-core component scheduling with batched work stealing (paper §3).

A pool of worker threads executes ready components.  Every component is
idle, ready, or busy; each worker owns a dedicated queue of ready
components and processes one event in one component at a time.  A worker
that runs out of ready components becomes a *thief*: it picks the *victim*
with the most ready components and steals a batch of half of them (the
paper reports that batching substantially outperforms stealing single
components — reproduced in ``benchmarks/bench_work_stealing_ablation.py``).

Python's GIL serializes bytecode execution, so this scheduler reproduces
the *scheduling structure* (queues, batching, stealing behaviour), not
parallel CPU speedup; see EXPERIMENTS.md.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from typing import TYPE_CHECKING, Optional

from .scheduler import Scheduler

if TYPE_CHECKING:  # pragma: no cover
    from ..core.component import ComponentCore


class _Worker(threading.Thread):
    """One scheduler worker with a dedicated ready-component queue."""

    def __init__(self, scheduler: "WorkStealingScheduler", index: int) -> None:
        super().__init__(name=f"kompics-worker-{index}", daemon=True)
        self.scheduler = scheduler
        self.index = index
        self.ready: deque["ComponentCore"] = deque()
        self.lock = threading.Lock()
        # Stats (written only by this thread, except pushes from schedule()).
        self.executed_slots = 0
        self.steal_attempts = 0
        self.steals = 0
        self.components_stolen = 0

    # -------------------------------------------------------------- queue ops

    def push(self, component: "ComponentCore") -> None:
        with self.lock:
            self.ready.append(component)

    def pop(self) -> Optional["ComponentCore"]:
        with self.lock:
            if self.ready:
                return self.ready.popleft()
        return None

    def queue_length(self) -> int:
        return len(self.ready)

    # ------------------------------------------------------------------- loop

    def run(self) -> None:
        scheduler = self.scheduler
        while scheduler.running:
            component = self.pop() or self.steal()
            if component is None:
                with scheduler.condition:
                    if scheduler.running and not self.ready:
                        scheduler.condition.wait(timeout=scheduler.idle_wait)
                continue
            self.executed_slots += 1
            if component.execute(scheduler.throughput):
                self.push(component)

    def steal(self) -> Optional["ComponentCore"]:
        """Steal a batch of ready components from the most loaded victim."""
        self.steal_attempts += 1
        victim = None
        victim_length = 0
        for other in self.scheduler.workers:
            if other is self:
                continue
            length = other.queue_length()
            if length > victim_length:
                victim, victim_length = other, length
        if victim is None or victim_length == 0:
            return None
        with victim.lock:
            available = len(victim.ready)
            if available == 0:
                return None
            batch = self.scheduler.batch_size(available)
            # Steal the oldest components (FIFO front) so long-waiting
            # components migrate to the idle worker.
            stolen = [victim.ready.popleft() for _ in range(min(batch, available))]
        self.steals += 1
        self.components_stolen += len(stolen)
        first, rest = stolen[0], stolen[1:]
        if rest:
            with self.lock:
                self.ready.extend(rest)
        return first


class WorkStealingScheduler(Scheduler):
    """The production scheduler: worker pool + batched work stealing."""

    def __init__(
        self,
        workers: int = 4,
        throughput: int = 1,
        steal_batch: int | str = "half",
        idle_wait: float = 0.005,
    ) -> None:
        super().__init__(throughput)
        if workers < 1:
            raise ValueError("need at least one worker")
        if steal_batch != "half" and (not isinstance(steal_batch, int) or steal_batch < 1):
            raise ValueError("steal_batch must be 'half' or a positive int")
        self.worker_count = workers
        self.steal_batch = steal_batch
        self.idle_wait = idle_wait
        self.workers: list[_Worker] = []
        self.condition = threading.Condition()
        self.running = False
        # itertools.count: atomic under the GIL, unlike a read-modify-write
        # on an int — several external threads (network, timers) may place
        # components concurrently.
        self._placement = itertools.count()
        self._pre_start: deque["ComponentCore"] = deque()

    def batch_size(self, available: int) -> int:
        if self.steal_batch == "half":
            return max(1, available // 2)
        return int(self.steal_batch)

    def start(self) -> None:
        with self.condition:
            if self.running:
                return
            self.running = True
            self.workers = [_Worker(self, i) for i in range(self.worker_count)]
        for worker in self.workers:
            worker.start()
        while True:
            with self.condition:
                if not self._pre_start:
                    break
                component = self._pre_start.popleft()
            self.schedule(component)

    def schedule(self, component: "ComponentCore") -> None:
        if not self.running:
            # Components scheduled before start() (e.g. Init during
            # bootstrap construction) are held and flushed on start.  The
            # running flag is re-checked under the lock so a component
            # can't slip into _pre_start after start() drained it.
            with self.condition:
                if not self.running:
                    self._pre_start.append(component)
                    return
        current = threading.current_thread()
        if isinstance(current, _Worker) and current.scheduler is self:
            current.push(component)
        else:
            # External thread (network/timer/main): round-robin placement.
            index = next(self._placement) % len(self.workers)
            self.workers[index].push(component)
        with self.condition:
            self.condition.notify()

    def shutdown(self, wait: bool = True) -> None:
        self.running = False
        with self.condition:
            self.condition.notify_all()
        if wait:
            for worker in self.workers:
                worker.join(timeout=2.0)

    # ------------------------------------------------------------------ stats

    def stats(self) -> dict[str, int]:
        """Aggregate scheduling statistics across workers."""
        return {
            "executed_slots": sum(w.executed_slots for w in self.workers),
            "steal_attempts": sum(w.steal_attempts for w in self.workers),
            "steals": sum(w.steals for w in self.workers),
            "components_stolen": sum(w.components_stolen for w in self.workers),
        }


class SingleThreadScheduler(WorkStealingScheduler):
    """A one-worker scheduler: serial execution on a background thread."""

    def __init__(self, throughput: int = 1) -> None:
        super().__init__(workers=1, throughput=throughput)
