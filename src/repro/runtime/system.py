"""The component system: runtime container for a component hierarchy.

A :class:`ComponentSystem` owns the scheduler, the clock, the seeded random
source, and the root of the containment hierarchy.  ``bootstrap(Main)``
mirrors the paper's ``Kompics.bootstrap(Main.class)``: it instantiates the
root component and activates it.

Fault policy (paper section 2.5): a Fault that escalates past the root runs
the *system fault handler*.  The default policy (``"halt"``) dumps the
exception to stderr and halts the system, exactly as the paper describes;
``"record"`` stores it for inspection and ``"raise"`` re-raises in place
(useful with the manual scheduler in tests).
"""

from __future__ import annotations

import itertools
import os
import random as random_module
import sys
import threading
from typing import TYPE_CHECKING, Optional

from ..core.component import Component, ComponentCore, ComponentDefinition
from ..core.dispatch import trigger
from ..core.errors import ConfigurationError
from ..core.lifecycle import Init, Start, Stop
from .clock import Clock, MonotonicClock
from .scheduler import ManualScheduler, Scheduler
from .work_stealing import WorkStealingScheduler

if TYPE_CHECKING:  # pragma: no cover
    from ..core.fault import Fault

FAULT_POLICIES = ("halt", "record", "raise")


class ComponentSystem:
    """A running Kompics system: scheduler + clock + component hierarchy."""

    def __init__(
        self,
        scheduler: Optional[Scheduler] = None,
        seed: Optional[int] = None,
        clock: Optional[Clock] = None,
        fault_policy: str = "halt",
        prune_channels: bool = True,
        compiled_dispatch: Optional[bool] = None,
        name: str = "kompics",
    ) -> None:
        if fault_policy not in FAULT_POLICIES:
            raise ConfigurationError(
                f"fault_policy must be one of {FAULT_POLICIES}, got {fault_policy!r}"
            )
        self.name = name
        self.scheduler = scheduler if scheduler is not None else WorkStealingScheduler()
        self.scheduler.attach(self)
        self.clock = clock if clock is not None else MonotonicClock()
        self.random = random_module.Random(seed)
        self.seed = seed
        self.fault_policy = fault_policy
        self.prune_channels = prune_channels
        if compiled_dispatch is None:
            compiled_dispatch = os.environ.get("REPRO_COMPILED_DISPATCH", "1") != "0"
        #: Route events through generation-invalidated compiled plans
        #: (:mod:`repro.core.routing`) instead of the recursive reference
        #: walker.  ``REPRO_COMPILED_DISPATCH=0`` flips the default.
        self.compiled_dispatch = compiled_dispatch
        self.roots: list[ComponentCore] = []
        self.components: set[ComponentCore] = set()
        self.unhandled_faults: list["Fault"] = []
        self.services: dict[str, object] = {}
        self.halted = False
        #: optional execution tracer (see repro.runtime.trace.Tracer).
        self.tracer = None
        self._component_sequence = 0
        self._generation = 0
        self._generation_counter = itertools.count(1)
        self._active = 0
        self._quiet = threading.Condition()
        #: With the ManualScheduler every ready/idle transition happens on
        #: the single driving thread, so the scheduler bridge skips the
        #: condition lock (await_quiescence never waits in manual mode).
        self._single_threaded = isinstance(self.scheduler, ManualScheduler)

    # -------------------------------------------------------------- bootstrap

    def bootstrap(
        self,
        main_definition: type[ComponentDefinition],
        *args: object,
        init: Optional[Init] = None,
        name: Optional[str] = None,
        **kwargs: object,
    ) -> Component:
        """Create and start a root component (the paper's Main)."""
        self.scheduler.start()
        root = ComponentCore(
            self, main_definition, args, kwargs, parent=None, name=name
        )
        self.roots.append(root)
        if init is not None:
            trigger(init, root.control_port.outside)
        trigger(Start(), root.control_port.outside)
        return root.component

    def shutdown(self, wait: bool = True) -> None:
        """Stop all roots, destroy the hierarchy, stop the scheduler."""
        for root in tuple(self.roots):
            trigger(Stop(), root.control_port.outside)
        self.await_quiescence(timeout=2.0)
        for root in tuple(self.roots):
            root.destroy()
        self.roots.clear()
        for service in self.services.values():
            close = getattr(service, "close", None)
            if callable(close):
                close()
        self.scheduler.shutdown(wait=wait)

    # -------------------------------------------------------------- services

    def register_service(self, key: str, service: object) -> None:
        """Register a shared runtime service (timer wheel, network router...)."""
        self.services[key] = service

    def service(self, key: str) -> object:
        try:
            return self.services[key]
        except KeyError:
            raise ConfigurationError(f"no service {key!r} registered") from None

    # ------------------------------------------------------- scheduler bridge

    def component_ready(self, component: ComponentCore) -> None:
        if self._single_threaded:
            self._active += 1
            self.scheduler.schedule(component)
            return
        with self._quiet:
            self._active += 1
        self.scheduler.schedule(component)

    def component_idle(self, component: ComponentCore) -> None:
        if self._single_threaded:
            self._active -= 1
            return
        with self._quiet:
            self._active -= 1
            if self._active <= 0:
                self._quiet.notify_all()

    @property
    def active_components(self) -> int:
        """Components currently ready or busy."""
        return self._active

    def await_quiescence(self, timeout: Optional[float] = None) -> bool:
        """Block until no component is ready or busy (momentarily).

        Quiescence of components does not imply quiescence of external
        sources (timers, sockets); callers coordinating with those should
        use protocol-level acknowledgements instead.
        """
        if isinstance(self.scheduler, ManualScheduler):
            self.scheduler.run_to_quiescence()
            return self._active == 0
        with self._quiet:
            return self._quiet.wait_for(lambda: self._active == 0, timeout=timeout)

    # ------------------------------------------------------------ bookkeeping

    def next_component_id(self) -> int:
        """Per-system component ids keep auto-generated names (and thus
        execution traces) identical across repeated runs."""
        self._component_sequence += 1
        return self._component_sequence

    def register_component(self, component: ComponentCore) -> None:
        self.components.add(component)
        self.bump_generation()

    def unregister_component(self, component: ComponentCore) -> None:
        self.components.discard(component)

    def bump_generation(self) -> None:
        """Start a new topology generation (epoch) after a routing change.

        Compiled dispatch plans and walker-mode pruning caches are keyed on
        the generation, so bumping it invalidates every cached route in one
        integer write.  Callers: subscribe/unsubscribe, connect/disconnect,
        hold/resume, plug/unplug, component create/destroy.  The counter is
        drawn from :func:`itertools.count` so concurrent bumps from racing
        reconfigurations each observe a strictly fresh generation.
        """
        self._generation = next(self._generation_counter)

    @property
    def generation(self) -> int:
        """The current topology generation (monotonically increasing)."""
        return self._generation

    # ------------------------------------------------------------------ fault

    def handle_root_fault(self, fault: "Fault") -> None:
        """The system fault handler (paper: dump to stderr and halt)."""
        self.unhandled_faults.append(fault)
        if self.fault_policy == "raise":
            raise fault.cause
        if self.fault_policy == "halt":
            sys.stderr.write(
                f"[{self.name}] unhandled fault in {fault.source.name}: "
                f"{fault.trace()}\n"
            )
            self.halted = True
            self.scheduler.shutdown(wait=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ComponentSystem {self.name!r} components={len(self.components)} "
            f"active={self._active}>"
        )
