"""Execution runtimes: schedulers, clocks, and the component system.

The paper's third design principle — "decouple component code from its
executor" — lives here: :class:`~repro.runtime.system.ComponentSystem`
accepts any :class:`~repro.runtime.scheduler.Scheduler`, so the same
components run under the multi-core work-stealing pool, a single thread, a
manually stepped test harness, or the deterministic simulation runtime in
:mod:`repro.simulation`.
"""

from .clock import Clock, MonotonicClock, VirtualClock, WallClock
from .scheduler import ManualScheduler, Scheduler
from .system import ComponentSystem
from .trace import TraceEntry, Tracer
from .work_stealing import SingleThreadScheduler, WorkStealingScheduler

__all__ = [
    "Clock",
    "ComponentSystem",
    "ManualScheduler",
    "MonotonicClock",
    "Scheduler",
    "SingleThreadScheduler",
    "TraceEntry",
    "Tracer",
    "VirtualClock",
    "WallClock",
    "WorkStealingScheduler",
]
