"""Component life-cycle events and the Control port (paper section 2.4).

Every component provides a Control port carrying:

- ``Init`` (negative): component-specific configuration; guaranteed to be
  the first event a component handles if it subscribed an Init handler.
- ``Start`` / ``Stop`` (negative): activate / passivate the component, which
  recursively activates / passivates its subcomponents.
- ``Fault`` (positive): uncaught handler exceptions, wrapped by the runtime
  (see :mod:`repro.core.fault`).
"""

from __future__ import annotations

import enum

from .event import Event
from .fault import Fault
from .port import PortType


class Init(Event):
    """Base class for component initialization events.

    Subclass this per component definition to carry configuration
    parameters, mirroring the paper's ``MyInit`` examples.
    """

    __slots__ = ()


class Start(Event):
    """Activate a component (and, recursively, its subcomponents)."""

    __slots__ = ()


class Stop(Event):
    """Passivate a component (and, recursively, its subcomponents)."""

    __slots__ = ()


class ControlPort(PortType):
    """The control port every component provides by default."""

    positive = (Fault,)
    negative = (Init, Start, Stop)


class LifecycleState(enum.Enum):
    """Externally observable component states."""

    PASSIVE = "passive"
    ACTIVE = "active"
    FAULTY = "faulty"
    DESTROYED = "destroyed"
