"""The Kompics component model: events, ports, components, channels.

This package implements the paper's section 2 in full: typed events and
ports, hierarchical components with provided/required ports, publish-
subscribe event dissemination over FIFO channels, component life-cycle and
the Init-first guarantee, Erlang-style fault escalation, and the four
channel commands (hold/resume/plug/unplug) enabling dynamic reconfiguration.
"""

from .channel import Channel, connect, disconnect
from .component import Component, ComponentCore, ComponentDefinition
from .dispatch import trigger
from .errors import (
    ConfigurationError,
    ConnectionError,
    KompicsError,
    LifecycleError,
    PortTypeError,
    SimulationError,
    SubscriptionError,
)
from .event import Direction, Event, NEGATIVE, POSITIVE
from .fault import Fault
from .handler import handles
from .lifecycle import ControlPort, Init, LifecycleState, Start, Stop
from .port import Port, PortFace, PortType
from .reconfig import replace_component
from .routing import DeliveryPlan, compile_plan, plan_for

__all__ = [
    "Channel",
    "Component",
    "ComponentCore",
    "ComponentDefinition",
    "ConfigurationError",
    "ConnectionError",
    "ControlPort",
    "DeliveryPlan",
    "Direction",
    "Event",
    "Fault",
    "Init",
    "KompicsError",
    "LifecycleError",
    "LifecycleState",
    "NEGATIVE",
    "POSITIVE",
    "Port",
    "PortFace",
    "PortType",
    "PortTypeError",
    "SimulationError",
    "Start",
    "Stop",
    "SubscriptionError",
    "compile_plan",
    "connect",
    "disconnect",
    "handles",
    "plan_for",
    "replace_component",
    "trigger",
]
