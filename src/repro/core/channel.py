"""Channels: first-class bindings between complementary port faces.

Channels forward events in both directions in FIFO order (paper section
2.1) and support the four reconfiguration commands of section 2.6:

``hold()``
    stop forwarding; queue events in both directions.
``resume()``
    first flush all queued events in arrival order, then forward as usual.
``unplug(face)``
    detach one end; events flowing toward the missing end are queued so no
    triggered event is ever dropped during reconfiguration.
``plug(face)``
    re-attach the unplugged end to a (possibly different) compatible face.

A channel may carry a *selector*: a predicate over events that must hold for
the event to be forwarded (used e.g. to route per-destination traffic when
several components share a provider).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Optional

from . import dispatch, routing
from .errors import ConnectionError as KConnectionError
from .event import Direction, Event
from .port import PortFace, check_faces_connectable

Selector = Callable[[Event], bool]

#: Reconfiguration-command hook, installed by :mod:`repro.analysis.race`
#: while race tracking is active and None otherwise.  Called as
#: ``hook(op, channel, events)`` where ``op`` is one of ``"hold"``,
#: ``"resume"``, ``"release"``, ``"unplug"``, ``"plug"`` and ``events`` is
#: the tuple of queued events affected by the command — the tracker turns
#: these into happens-before edges (e.g. resume-caller → flushed delivery).
_race_channel = None


class Channel:
    """A FIFO, bidirectional, reconfigurable link between two port faces.

    Channels are the single largest object population of a big simulation
    (every connect allocates one), so the footprint matters: the class is
    slotted, and the reconfiguration queue and pruning cache — needed only
    on held/unplugged channels and walker-mode dispatch respectively — are
    allocated lazily on first use.
    """

    __slots__ = (
        "port_type",
        "positive_end",
        "negative_end",
        "selector",
        "prune",
        "held",
        "destroyed",
        "_queue",
        "_lock",
        "_prune_cache",
    )

    def __init__(
        self,
        face_a: PortFace,
        face_b: PortFace,
        selector: Optional[Selector] = None,
        prune: bool = True,
    ) -> None:
        provider, requirer = check_faces_connectable(face_a, face_b)
        self.port_type = provider.port_type
        self.positive_end: Optional[PortFace] = provider  # emits POSITIVE into channel
        self.negative_end: Optional[PortFace] = requirer  # emits NEGATIVE into channel
        self.selector = selector
        self.prune = prune
        self.held = False
        self.destroyed = False
        #: Reconfiguration queue; None until the first event is held back.
        self._queue: Optional[deque[tuple[Event, Direction]]] = None
        self._lock = threading.RLock()
        # Walker-mode pruning cache, stamped with the generation it was
        # built under; a stale stamp drops the whole table so entries for
        # event types that never recur cannot accumulate.  Compiled
        # dispatch does not use it (pruning is baked into the plans).
        # None until the first walker-mode reachability query.
        self._prune_cache: Optional[
            tuple[int, dict[tuple[type[Event], Direction], bool]]
        ] = None
        provider.attach_channel(self)
        requirer.attach_channel(self)
        _bump_generation(provider)

    # ------------------------------------------------------------------ ends

    def other_end(self, face: PortFace) -> Optional[PortFace]:
        """The face at the opposite end of ``face`` (None while unplugged)."""
        if face is self.positive_end:
            return self.negative_end
        if face is self.negative_end:
            return self.positive_end
        raise KConnectionError(f"{face!r} is not an end of this channel")

    def connects(self, a: PortFace, b: PortFace) -> bool:
        return {id(self.positive_end), id(self.negative_end)} == {id(a), id(b)}

    # ------------------------------------------------------------- forwarding

    def forward(self, event: Event, direction: Direction, source: PortFace) -> None:
        """Forward an event arriving from ``source`` toward the other end."""
        if self.destroyed:
            return
        if self.selector is not None and not self.selector(event):
            return
        with self._lock:
            destination = self.other_end(source)
            if self.held or destination is None:
                if self._queue is None:
                    self._queue = deque()
                self._queue.append((event, direction))
                return
        system = destination.owner.system
        if system is not None and system.compiled_dispatch:
            # Continue through the destination face's compiled plan.  This
            # is the continuation point for selector channels (which always
            # stay live steps in plans) and for any event that reaches a
            # live channel through the reference walker of a plan-enabled
            # system.  Pruning is inherent: an unreachable subtree compiles
            # to an empty plan.
            routing.execute(destination, event, direction)
            return
        if self.prune and not self._reachable(destination, type(event), direction):
            return
        dispatch.arrive(destination, event, direction)

    def _reachable(
        self, destination: PortFace, event_type: type[Event], direction: Direction
    ) -> bool:
        system = destination.owner.system
        if system is None or not system.prune_channels:
            return True
        generation = system.generation
        stamp, cache = self._prune_cache or (-1, None)
        if stamp != generation:
            cache = {}
            self._prune_cache = (generation, cache)
        cached = cache.get((event_type, direction))
        if cached is not None:
            return cached
        result = dispatch.leads_to_subscriber(destination, event_type, direction)
        cache[(event_type, direction)] = result
        return result

    def _bump(self) -> None:
        """Invalidate compiled plans after a state change on this channel."""
        end = self.positive_end if self.positive_end is not None else self.negative_end
        if end is not None:
            _bump_generation(end)

    # --------------------------------------------------------- reconfiguration

    def hold(self) -> None:
        """Stop forwarding and start queueing events in both directions.

        Bumps the topology generation so compiled plans that inlined this
        channel are recompiled with a queue-stop step in its place.
        """
        with self._lock:
            self.held = True
            hook = _race_channel
            if hook is not None:
                hook("hold", self, ())
        self._bump()

    def resume(self) -> None:
        """Flush queued events in order, then resume normal forwarding."""
        hook = _race_channel
        if hook is not None:
            hook("resume", self, ())
        while True:
            with self._lock:
                if not self._queue:
                    self.held = False
                    self._bump()  # plans may re-inline this channel
                    return
                event, direction = self._queue.popleft()
                # Flushed events go toward whichever end can now receive
                # them; direction identifies the destination role.
                destination = (
                    self.negative_end
                    if direction is Direction.POSITIVE
                    else self.positive_end
                )
            if destination is None:
                # Still unplugged on that side: put it back and stay held.
                with self._lock:
                    self._queue.appendleft((event, direction))
                    return
            if hook is not None:
                hook("release", self, (event,))
            dispatch.route(destination, event, direction)

    def unplug(self, face: PortFace) -> None:
        """Detach ``face`` from this channel; traffic toward it is queued."""
        with self._lock:
            if face is self.positive_end:
                self.positive_end = None
            elif face is self.negative_end:
                self.negative_end = None
            else:
                raise KConnectionError(f"{face!r} is not an end of this channel")
            if self in face.channels:
                face.channels.remove(self)
            hook = _race_channel
            if hook is not None:
                hook("unplug", self, ())
        _bump_generation(face)

    def plug(self, face: PortFace) -> None:
        """Attach the unplugged end of the channel to ``face``."""
        with self._lock:
            if face.port_type is not self.port_type:
                raise KConnectionError(
                    f"cannot plug {face!r} into a {self.port_type.__name__} channel"
                )
            role = face.emits
            if role is Direction.POSITIVE:
                if self.positive_end is not None:
                    raise KConnectionError("positive end of channel is already plugged")
                self.positive_end = face
            else:
                if self.negative_end is not None:
                    raise KConnectionError("negative end of channel is already plugged")
                self.negative_end = face
            face.attach_channel(self)
            hook = _race_channel
            if hook is not None:
                hook(
                    "plug",
                    self,
                    tuple(event for event, _ in (self._queue or ())),
                )
        _bump_generation(face)

    def destroy(self) -> None:
        """Disconnect both ends and drop the channel (and any queued events)."""
        with self._lock:
            self.destroyed = True
            for end in (self.positive_end, self.negative_end):
                if end is not None and self in end.channels:
                    end.channels.remove(self)
                    _bump_generation(end)
            self.positive_end = None
            self.negative_end = None
            self._queue = None

    @property
    def queued(self) -> int:
        """Number of events currently queued (held or unplugged)."""
        with self._lock:
            return len(self._queue) if self._queue is not None else 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "held" if self.held else ("destroyed" if self.destroyed else "live")
        return f"<Channel {self.port_type.__name__} {state} queued={self.queued}>"


def connect(
    face_a: PortFace,
    face_b: PortFace,
    selector: Optional[Selector] = None,
) -> Channel:
    """Connect two complementary port faces with a new channel."""
    return Channel(face_a, face_b, selector=selector)


def disconnect(face_a: PortFace, face_b: PortFace) -> None:
    """Destroy the channel connecting ``face_a`` and ``face_b``."""
    for channel in tuple(face_a.channels):
        if channel.connects(face_a, face_b):
            channel.destroy()
            return
    raise KConnectionError(f"no channel connects {face_a!r} and {face_b!r}")


def _bump_generation(face: PortFace) -> None:
    system = face.owner.system
    if system is not None:
        system.bump_generation()
