"""Compiled dispatch plans: generation-invalidated routing tables.

:mod:`repro.core.dispatch` defines event dissemination as a recursive walk
over port faces and channels (paper section 2.3).  That walk re-derives the
same routing decision for every triggered event: it re-crosses the same
component boundaries, re-scans the same subscription lists with
``issubclass``, and re-runs graph reachability behind a per-channel cache to
apply the paper's pruning optimization.  The topology only changes when a
reconfiguration command runs, so all of that work is loop-invariant between
topology changes.

This module compiles the walk once per *topology generation*.  For a
``(face, event type, direction)`` key it flattens the recursive
arrive/deliver/forward traversal into an immutable :class:`DeliveryPlan`:

- an ordered sequence of **delivery steps** ``(owner, face)`` — the exact
  ``ComponentCore.receive_event`` calls the walker would make, in the
  walker's depth-first order (so per-component FIFO order is preserved);
- **live steps** ``(channel, source face)`` for the channel hops that must
  still run live logic at event time: selector channels (the predicate
  sees the event value), and held or unplugged channels, which compile to
  a "stop and queue here" step so the reconfiguration guarantee of paper
  section 2.6 — no triggered event is ever dropped — is preserved exactly.
  A live step simply calls :meth:`Channel.forward`, which queues under the
  channel lock or, when the selector passes on a live channel, continues
  through the *destination face's own compiled plan*.

Plans are cached on the face they start from, keyed on the owning system's
``generation`` counter.  Every operation that changes routing already bumps
that counter (subscribe/unsubscribe, connect/disconnect, hold/resume,
plug/unplug, component create/destroy), so a single integer comparison
both validates the cache and subsumes the walker's per-channel pruning
cache: stale tables are dropped wholesale, never scanned entry by entry.

The §2.3 pruning optimization falls out of compilation for free: a channel
hop whose destination subtree contains no compatible subscription (and no
held/unplugged queue-stop) contributes no steps, so the compiled plan for a
"leads nowhere" trigger is empty and executing it is a no-op.

Concurrency note: plan execution is lock-free on the inlined path.  A
reconfiguration racing with an in-flight trigger from another thread may be
observed by that one event as either before or after the command — the same
window the walker has between snapshotting ``face.channels`` and taking the
channel lock.  The generation check happens once per trigger, at plan
lookup.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from .event import Direction, Event

if TYPE_CHECKING:  # pragma: no cover
    from .component import ComponentCore
    from .port import PortFace

#: Step tags.  DELIVER enqueues on a component's work queue; LIVE runs a
#: channel's event-time logic (selector evaluation / held- or unplugged-
#: channel queueing).
DELIVER = 0
LIVE = 1


class DeliveryPlan:
    """An immutable, flattened route for one ``(face, event type, direction)``.

    ``steps`` is a tuple of ``(tag, a, b)`` triples: ``(DELIVER, owner,
    face)`` or ``(LIVE, channel, source_face)``.  When no live step exists
    (the overwhelmingly common case) ``deliveries`` holds the bare
    ``(owner, face)`` pairs so execution is a single tag-free loop.
    """

    __slots__ = ("event_type", "direction", "generation", "steps", "deliveries")

    def __init__(
        self,
        event_type: type[Event],
        direction: Direction,
        generation: int,
        steps: tuple[tuple[int, object, object], ...],
    ) -> None:
        self.event_type = event_type
        self.direction = direction
        self.generation = generation
        if any(tag == LIVE for tag, _, _ in steps):
            self.steps = steps
            self.deliveries: tuple | None = None
        else:
            # Prebound receive methods: one attribute lookup less per
            # delivered event on the tag-free loop.  The tagged triples are
            # redundant here (the owner is recoverable as
            # ``receive.__self__``), so the all-DELIVER case — nearly every
            # plan — stores only the prebound form: plan tables are a large
            # slice of a big simulation's per-peer footprint.
            self.steps = ()
            self.deliveries = tuple(
                (owner.receive_event, face) for _, owner, face in steps
            )

    def execute(self, event: Event) -> None:
        """Run the plan for one event."""
        deliveries = self.deliveries
        if deliveries is not None:
            for receive, face in deliveries:
                receive(event, face)
            return
        direction = self.direction
        for tag, a, b in self.steps:
            if tag == DELIVER:
                a.receive_event(event, b)
            else:
                a.forward(event, direction, b)

    def delivery_targets(self) -> list[tuple["ComponentCore", "PortFace"]]:
        """The inlined ``(owner, face)`` pairs (excludes live-step routes)."""
        if self.deliveries is not None:
            return [(receive.__self__, face) for receive, face in self.deliveries]
        return [(a, b) for tag, a, b in self.steps if tag == DELIVER]

    def live_channels(self) -> list[object]:
        """The channels this plan defers to event-time logic."""
        return [a for tag, a, _ in self.steps if tag == LIVE]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.deliveries is not None:
            deliver, live = len(self.deliveries), 0
        else:
            deliver = sum(1 for tag, _, _ in self.steps if tag == DELIVER)
            live = len(self.steps) - deliver
        return (
            f"<DeliveryPlan {self.event_type.__name__}/{self.direction.value} "
            f"gen={self.generation} deliver={deliver} live={live}>"
        )


def compile_plan(
    face: "PortFace",
    event_type: type[Event],
    direction: Direction,
    generation: int | None = None,
) -> DeliveryPlan:
    """Flatten the arrive/deliver/forward walk from ``face`` into a plan.

    The traversal mirrors :func:`repro.core.dispatch.arrive` step for step,
    inlining across boundary crossings and live, selector-free, fully
    plugged channels.  Diamond topologies (two paths converging on one
    face) keep the walker's delivery multiplicity — only a true cycle,
    which would not terminate under the walker either, is cut.
    """
    if generation is None:
        system = face.port.owner.system
        generation = system.generation if system is not None else 0
    steps: list[tuple[int, object, object]] = []
    _flatten(face, event_type, direction, steps, set())
    return DeliveryPlan(event_type, direction, generation, tuple(steps))


def _flatten(
    face: "PortFace",
    event_type: type[Event],
    direction: Direction,
    steps: list,
    path: set[int],
) -> None:
    key = id(face)
    if key in path:
        return  # cycle guard; the recursive walker would never terminate here
    path.add(key)
    try:
        if direction is face.incoming and face.subscriptions:
            # Same per-face owner dedup as dispatch.deliver (dict preserves
            # subscription order).
            owners: dict = {}
            for subscription in tuple(face.subscriptions):
                if issubclass(event_type, subscription.event_type):
                    owners.setdefault(subscription.owner)
            for owner in owners:
                steps.append((DELIVER, owner, face))

        port = face.port
        inward = direction is port.boundary_inward
        if not face.is_inside:
            if inward:
                _flatten(port.inside, event_type, direction, steps, path)
                return
            channels = tuple(face.channels)
        elif inward:
            channels = tuple(face.channels)
        else:
            _flatten(port.outside, event_type, direction, steps, path)
            return

        for channel in channels:
            if channel.destroyed:
                continue
            destination = channel.other_end(face)
            if channel.selector is not None or channel.held or destination is None:
                # Event-time logic required: selector predicates see the
                # event value; held/unplugged channels are queue-stops.
                steps.append((LIVE, channel, face))
                continue
            _flatten(destination, event_type, direction, steps, path)
    finally:
        path.discard(key)


def plan_for(face: "PortFace", event_type: type[Event], direction: Direction) -> DeliveryPlan:
    """The cached plan for ``(face, event_type, direction)``, compiling on miss.

    The per-face cache is a ``(generation, {key: plan})`` pair.  On a
    generation mismatch the whole table is replaced, so stale entries for
    event types that are never triggered again cannot accumulate (the leak
    the walker's per-channel pruning cache had).
    """
    system = face.port.owner.system
    generation = system.generation if system is not None else 0
    cache = face._plans
    if cache is None or cache[0] != generation:
        cache = (generation, {})
        face._plans = cache
    table = cache[1]
    key = (event_type, direction)
    plan = table.get(key)
    if plan is None:
        plan = compile_plan(face, event_type, direction, generation)
        table[key] = plan
    return plan


def execute(face: "PortFace", event: Event, direction: Direction) -> None:
    """Route one event from ``face`` through its compiled plan.

    Inlines :func:`plan_for`'s cache hit (one call frame fewer on every
    routed event); misses fall through to the shared compile path.
    """
    cache = face._plans
    if cache is not None:
        plan = cache[1].get((type(event), direction))
        if plan is not None:
            system = face.port.owner.system
            generation = system.generation if system is not None else 0
            if cache[0] == generation:
                plan.execute(event)
                return
    plan_for(face, type(event), direction).execute(event)


def cached_plans(face: "PortFace") -> Iterator[DeliveryPlan]:
    """Iterate the plans currently cached on ``face`` (introspection)."""
    cache = face._plans
    if cache is not None:
        yield from cache[1].values()
