"""Fault isolation and management (paper section 2.5).

An exception thrown and not caught within an event handler is caught by the
runtime, wrapped into a :class:`Fault` event and triggered on the faulty
component's control port.  A parent that subscribed a Fault handler to the
child's control port handles it (typically replacing the child through
dynamic reconfiguration).  An unhandled Fault is propagated up the
containment hierarchy; if it reaches the root unhandled, the system fault
handler runs (by default: dump to stderr and halt the component system).
"""

from __future__ import annotations

import traceback
from typing import TYPE_CHECKING, Optional

from .event import Event

if TYPE_CHECKING:  # pragma: no cover
    from .component import ComponentCore


class Fault(Event):
    """An uncaught handler exception, wrapped for the component hierarchy."""

    __slots__ = ("cause", "source", "event")

    def __init__(
        self,
        cause: BaseException,
        # Faults climb the local supervision tree and never cross a shard
        # boundary; the core reference is how the parent identifies and
        # restarts the failed child in-process.
        source: "ComponentCore",  # repro: noqa[D001]
        event: Optional[Event] = None,
    ) -> None:
        self.cause = cause
        self.source = source
        self.event = event

    def trace(self) -> str:
        """The formatted traceback of the wrapped exception."""
        return "".join(
            traceback.format_exception(type(self.cause), self.cause, self.cause.__traceback__)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Fault {type(self.cause).__name__}({self.cause}) in "
            f"{self.source.name} while handling {self.event!r}>"
        )


def escalate(fault: Fault) -> None:
    """Deliver ``fault`` to the nearest ancestor with a Fault subscription.

    Walks up from the faulty component: at each level, the parent's
    subscriptions on the child's control port (outside face) are checked; if
    none match, the fault escalates one level.  Reaching the root unhandled
    invokes the component system's fault handler.
    """
    component = fault.source
    while component is not None:
        face = component.control_port.outside
        matched: dict = {}
        for subscription in face.subscriptions:
            if issubclass(Fault, subscription.event_type):
                matched.setdefault(subscription.owner, []).append(subscription.handler)
        if matched:
            for owner, handlers in matched.items():
                owner.receive_work(fault, tuple(handlers), is_control=True)
            return
        component = component.parent
    system = fault.source.system
    if system is not None:
        system.handle_root_fault(fault)
