"""Events: passive, immutable, typed message objects (paper section 2.1).

Events are plain Python objects; subclassing expresses the event-type
hierarchy the paper relies on (``DataMessage <= Message``).  Concrete events
are usually declared as frozen dataclasses::

    @dataclass(frozen=True)
    class DataMessage(Message):
        data: bytes
        sequence_number: int

The framework never mutates events and may deliver the *same* event object
to many handlers (publish-subscribe fan-out), so immutability is part of the
model's contract, not just style.
"""

from __future__ import annotations

import enum

#: Mutation-check hook, installed by :mod:`repro.analysis.sanitizer` while
#: sanitize mode is active (``REPRO_SANITIZE=1``) and None otherwise.  The
#: guard methods below are only attached to :class:`Event` while a check is
#: installed, so the default path carries zero overhead.
_mutation_check = None


class Event:
    """Root of the event-type hierarchy.

    Every object that traverses a port must be an :class:`Event`.  The class
    carries no state of its own; attributes belong to subclasses.  (The
    ``__weakref__`` slot lets the sanitizer track delivered events without
    keeping them alive.)
    """

    __slots__ = ("__weakref__",)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


def _debug_setattr(self: Event, name: str, value: object) -> None:
    """Debug-mode ``__setattr__``: rejects mutation of sealed (delivered)
    events.  Attached to :class:`Event` only while the sanitizer is on."""
    check = _mutation_check
    if check is not None:
        check(self, name, "assigned")
    object.__setattr__(self, name, value)


def _debug_delattr(self: Event, name: str) -> None:
    check = _mutation_check
    if check is not None:
        check(self, name, "deleted")
    object.__delattr__(self, name)


def _install_mutation_guard(check) -> None:
    global _mutation_check
    _mutation_check = check
    Event.__setattr__ = _debug_setattr  # type: ignore[method-assign]
    Event.__delattr__ = _debug_delattr  # type: ignore[method-assign]


def _remove_mutation_guard() -> None:
    global _mutation_check
    _mutation_check = None
    for name in ("__setattr__", "__delattr__"):
        try:
            delattr(Event, name)
        except AttributeError:
            pass


class Direction(enum.Enum):
    """The sign of an event flowing through a port.

    ``POSITIVE`` events flow from a *provider* toward a *requirer*
    (indications/responses); ``NEGATIVE`` events flow from a requirer toward
    a provider (requests).  The paper writes these as ``+`` and ``-``.
    """

    POSITIVE = "+"
    NEGATIVE = "-"

    # Directions key the per-face plan and admission caches on every routed
    # event; the default Enum hash goes through a Python-level method, the
    # identity hash is C-level (members are singletons, so it is equivalent).
    __hash__ = object.__hash__

    @property
    def opposite(self) -> "Direction":
        return Direction.NEGATIVE if self is Direction.POSITIVE else Direction.POSITIVE

    def __repr__(self) -> str:
        return self.value


POSITIVE = Direction.POSITIVE
NEGATIVE = Direction.NEGATIVE
