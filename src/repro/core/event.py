"""Events: passive, immutable, typed message objects (paper section 2.1).

Events are plain Python objects; subclassing expresses the event-type
hierarchy the paper relies on (``DataMessage <= Message``).  Concrete events
are usually declared as frozen dataclasses::

    @dataclass(frozen=True)
    class DataMessage(Message):
        data: bytes
        sequence_number: int

The framework never mutates events and may deliver the *same* event object
to many handlers (publish-subscribe fan-out), so immutability is part of the
model's contract, not just style.
"""

from __future__ import annotations

import enum


class Event:
    """Root of the event-type hierarchy.

    Every object that traverses a port must be an :class:`Event`.  The class
    carries no state of its own; attributes belong to subclasses.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


class Direction(enum.Enum):
    """The sign of an event flowing through a port.

    ``POSITIVE`` events flow from a *provider* toward a *requirer*
    (indications/responses); ``NEGATIVE`` events flow from a requirer toward
    a provider (requests).  The paper writes these as ``+`` and ``-``.
    """

    POSITIVE = "+"
    NEGATIVE = "-"

    @property
    def opposite(self) -> "Direction":
        return Direction.NEGATIVE if self is Direction.POSITIVE else Direction.POSITIVE

    def __repr__(self) -> str:
        return self.value


POSITIVE = Direction.POSITIVE
NEGATIVE = Direction.NEGATIVE
