"""Event handlers and subscriptions (paper section 2.1).

A handler is a first-class procedure of a component accepting events of one
type (and its subtypes).  Handlers are declared with the :func:`handles`
decorator on methods of a :class:`~repro.core.component.ComponentDefinition`::

    class FailureDetector(ComponentDefinition):
        @handles(Pong)
        def on_pong(self, pong: Pong) -> None:
            ...

A :class:`Subscription` binds a handler to one port face; the handler then
executes (mutually exclusively with the component's other handlers) for
every compatible event arriving at that face.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from .errors import SubscriptionError
from .event import Direction, Event

if TYPE_CHECKING:  # pragma: no cover
    from .component import ComponentCore
    from .port import PortFace

HandlerFn = Callable[[Event], None]

_EVENT_TYPE_ATTR = "_kompics_event_type"


def handles(event_type: type[Event]) -> Callable[[Callable], Callable]:
    """Declare the event type a component method handles.

    The declared type is picked up by
    :meth:`~repro.core.component.ComponentDefinition.subscribe` so call
    sites read ``self.subscribe(self.on_pong, self.network)``.
    """
    if not (isinstance(event_type, type) and issubclass(event_type, Event)):
        raise SubscriptionError(f"@handles() requires an Event subclass, got {event_type!r}")

    def decorate(fn: Callable) -> Callable:
        setattr(fn, _EVENT_TYPE_ATTR, event_type)
        return fn

    return decorate


def declared_event_type(fn: Callable) -> type[Event] | None:
    """Return the event type attached by :func:`handles`, if any."""
    return getattr(fn, _EVENT_TYPE_ATTR, None)


class Subscription:
    """A binding of one handler to one port face.

    ``owner`` is the component whose work queue the handler executes on; it
    is normally the component that declared the handler (which may differ
    from the port's owner — e.g. a parent subscribing a Fault handler to a
    child's control port).
    """

    __slots__ = ("handler", "event_type", "face", "owner")

    def __init__(
        self,
        handler: HandlerFn,
        event_type: type[Event],
        face: "PortFace",
        owner: "ComponentCore",
    ) -> None:
        self.handler = handler
        self.event_type = event_type
        self.face = face
        self.owner = owner

    def matches(self, event_type: type[Event], direction: Direction) -> bool:
        return direction is self.face.incoming and issubclass(event_type, self.event_type)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Subscription {self.event_type.__name__} at {self.face!r} "
            f"for {self.owner.name}>"
        )


def make_subscription(
    handler: HandlerFn,
    face: "PortFace",
    owner: "ComponentCore",
    event_type: type[Event] | None = None,
) -> Subscription:
    """Validate and build a subscription (paper: subscriptions are checked
    against the port type definition)."""
    resolved = event_type or declared_event_type(handler)
    if resolved is None:
        raise SubscriptionError(
            f"handler {handler!r} has no @handles() declaration and no "
            f"event_type was given"
        )
    if not face.port_type.allowed(face.incoming, resolved):
        raise SubscriptionError(
            f"{resolved.__name__} events cannot arrive at {face!r} "
            f"(not allowed in the {face.incoming.value} direction of "
            f"{face.port_type.__name__})"
        )
    return Subscription(handler, resolved, face, owner)
