"""Publish-subscribe event dissemination (paper section 2.3).

The propagation rules, given an event with direction ``d`` arriving at a
port face:

1. Deliver the event to every subscription at the face whose event type
   matches and whose incoming direction is ``d`` (matched handlers are
   captured *now* and enqueued on the subscriber's FIFO work queue —
   paper Fig. 7 semantics: all compatible handlers run sequentially).
2. Continue propagation:

   - at an *outside* face, if ``d`` crosses the boundary inward, recurse on
     the inside face; otherwise forward along the channels attached here;
   - at an *inside* face, if ``d`` is inward-flowing, forward along the
     delegation channels attached here (down to children); otherwise cross
     outward and recurse on the outside face.

As an optimization (explicitly called out by the paper), forwarding along a
channel is skipped when no compatible subscription is transitively reachable
through it; see :func:`leads_to_subscriber`.

Two interchangeable engines implement these rules:

- the **recursive walker** below (:func:`arrive`/:func:`deliver`), which
  re-derives the route for every event — retained as the executable
  reference semantics, the compiler input, and the oracle for the
  differential test suite;
- **compiled dispatch plans** (:mod:`repro.core.routing`), which flatten
  the walk once per topology generation and replay it as a routing table.

:func:`route` picks the engine from ``ComponentSystem.compiled_dispatch``
(plans by default; ``REPRO_COMPILED_DISPATCH=0`` or
``ComponentSystem(compiled_dispatch=False)`` selects the walker).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from . import routing
from .errors import PortTypeError
from .event import Direction, Event

if TYPE_CHECKING:  # pragma: no cover
    from .component import ComponentCore
    from .port import PortFace

#: Event-sealing hook, installed by :mod:`repro.analysis.sanitizer` while
#: sanitize mode is active and None otherwise (the None check is the only
#: cost on the default path).  Sealing marks an event as shared: any later
#: mutation raises EventMutationError.
_sanitizer_seal = None

#: Happens-before stamping hook, installed by :mod:`repro.analysis.race`
#: while race tracking is active and None otherwise.  Stamping attaches the
#: triggering execution's vector clock to the event (the trigger→delivery
#: edge of the happens-before model).
_race_stamp = None


def trigger(event: Event, face: "PortFace") -> None:
    """Asynchronously send ``event`` through a port face (paper section 2.2).

    Triggering on a port's *inside* face is the owner emitting an event
    (e.g. a provider triggering an indication); triggering on a child's
    *outside* face is the parent pushing an event into the child (e.g.
    ``trigger(Start(), child.control())``).
    """
    seal = _sanitizer_seal
    if seal is not None:
        seal(event)
    stamp = _race_stamp
    if stamp is not None:
        stamp(event)
    # Fast path: a ``face._fast`` hit means this exact event class already
    # passed the port-type check for this face's trigger direction and has
    # a compiled plan for the current topology generation — one class-keyed
    # dict probe replaces the allowed() lookup and the plan-table lookup.
    # The verdict of allowed() is static per (port type, direction, class),
    # so skipping it on a hit cannot change which triggers raise.
    fast = face._fast
    if fast is not None:
        plan = fast[1].get(event.__class__)
        if plan is not None:
            system = face.port.owner.system
            if system is not None and fast[0] == system._generation:
                plan.execute(event)
                return
    _trigger_slow(event, face)


def _trigger_slow(event: Event, face: "PortFace") -> None:
    """Checked trigger path: validate the type, compile/cache, dispatch."""
    port = face.port
    # The owner emits on the inside face; a parent pushes inward across the
    # boundary on the outside face — precomputed per face at creation.
    direction = face.trigger_direction
    if not port.port_type.allowed(direction, type(event)):
        raise PortTypeError(
            f"{type(event).__name__} may not be triggered in the "
            f"{direction.value} direction of {port.port_type.__name__} "
            f"(at {face!r})"
        )
    system = port.owner.system
    if system is not None and system.compiled_dispatch:
        plan = routing.plan_for(face, type(event), direction)
        fast = face._fast
        if fast is None or fast[0] != plan.generation:
            fast = (plan.generation, {})
            face._fast = fast
        fast[1][type(event)] = plan
        plan.execute(event)
    else:
        arrive(face, event, direction)


def route(face: "PortFace", event: Event, direction: Direction) -> None:
    """Propagate an in-flight event from ``face`` with the active engine.

    Compiled dispatch plans by default; the recursive reference walker when
    the owning system was built with ``compiled_dispatch=False``.
    """
    system = face.port.owner.system
    if system is not None and system.compiled_dispatch:
        routing.execute(face, event, direction)
    else:
        arrive(face, event, direction)


def arrive(face: "PortFace", event: Event, direction: Direction) -> None:
    """Propagate an in-flight event from ``face`` per the rules above.

    This is the recursive *reference walker*: the executable specification
    that :func:`repro.core.routing.compile_plan` flattens and that the
    differential tests replay as the oracle.
    """
    deliver(face, event, direction)
    port = face.port
    inward = direction is port.boundary_inward
    if not face.is_inside:
        if inward:
            arrive(port.inside, event, direction)
        else:
            for channel in tuple(face.channels):
                channel.forward(event, direction, face)
    else:
        if inward:
            for channel in tuple(face.channels):
                channel.forward(event, direction, face)
        else:
            arrive(port.outside, event, direction)


def deliver(face: "PortFace", event: Event, direction: Direction) -> None:
    """Enqueue work on every component with a matching subscription at ``face``.

    Handlers are *matched again at execution time* (Kompics port-queue
    semantics): unsubscribing prevents already-delivered but not-yet-executed
    events from being handled — the paper's reply-only-once example (§2.2)
    relies on this.
    """
    subscriptions = face.subscriptions
    if direction is not face.incoming or not subscriptions:
        return
    event_type = type(event)
    if len(subscriptions) == 1:
        # Allocation-free fast path for the dominant single-subscription
        # face: no snapshot tuple, no owner-dedup dict.
        subscription = subscriptions[0]
        if issubclass(event_type, subscription.event_type):
            subscription.owner.receive_event(event, face)
        return
    owners: dict["ComponentCore", None] = {}
    for subscription in tuple(subscriptions):
        if issubclass(event_type, subscription.event_type):
            owners.setdefault(subscription.owner)
    for owner in owners:
        owner.receive_event(event, face)


def leads_to_subscriber(
    face: "PortFace",
    event_type: type[Event],
    direction: Direction,
    _visited: set[int] | None = None,
) -> bool:
    """Return True if an event of ``event_type`` arriving at ``face`` can
    transitively reach a compatible subscription.

    Used by channels to prune forwarding (paper section 2.3: "our runtime
    system avoids forwarding events on channels that would not lead to any
    compatible subscribed handlers").  Held channels are conservatively
    treated as reachable since queued events are delivered on resume.
    """
    visited = _visited if _visited is not None else set()
    key = id(face)
    if key in visited:
        return False
    visited.add(key)

    if direction is face.incoming and any(
        issubclass(event_type, s.event_type) for s in face.subscriptions
    ):
        return True

    port = face.port
    inward = direction is port.boundary_inward
    if not face.is_inside:
        if inward:
            return leads_to_subscriber(port.inside, event_type, direction, visited)
        channels = face.channels
    else:
        if not inward:
            return leads_to_subscriber(port.outside, event_type, direction, visited)
        channels = face.channels
    for channel in channels:
        if channel.held:
            return True
        other = channel.other_end(face)
        if other is None:
            return True  # unplugged end queues events; conservatively reachable
        if leads_to_subscriber(other, event_type, direction, visited):
            return True
    return False
