"""Components: reactive, concurrently executing state machines (paper §2.1).

Two classes cooperate:

:class:`ComponentDefinition`
    the user-facing base class.  Its constructor body declares ports
    (``provides``/``requires``), subscribes handlers, creates subcomponents
    and connects channels — exactly the paper's programming constructs.

:class:`ComponentCore`
    the runtime half: the FIFO work queue, the idle/ready/busy execution
    state driving the scheduler, life-cycle state, fault wrapping, and the
    containment hierarchy.

Handlers of one component instance are mutually exclusive: the scheduler
never executes a component on two workers at once, so handler code needs no
locks to protect component-local state.
"""

from __future__ import annotations

import logging
import threading
from typing import TYPE_CHECKING, NamedTuple, Optional, TypeVar

from . import channel as channel_mod
from . import dispatch
from .errors import ConfigurationError, LifecycleError, SanitizerError
from .event import Event
from .fault import Fault, escalate
from .handler import HandlerFn, Subscription, make_subscription
from .lifecycle import ControlPort, Init, LifecycleState, Start, Stop
from .port import Port, PortFace, PortType

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.system import ComponentSystem
    from .channel import Channel


# Stack of cores under construction; create() nests, so this is a stack.
_construction = threading.local()

#: Execution monitor, installed by :mod:`repro.analysis.sanitizer` while
#: sanitize mode is active and None otherwise.  It tags handler execution
#: with its worker thread and raises ReentrancyError when the handler
#: mutual-exclusion guarantee is bypassed.
_sanitizer_monitor = None

#: Execution observer, installed by :mod:`repro.analysis.race` while race
#: tracking is active and None otherwise.  ``begin``/``end`` bracket every
#: executed work item so the tracker can maintain per-component vector
#: clocks and the access recorder can attribute object accesses to epochs.
_race_observer = None


def _construction_stack() -> list["ComponentCore"]:
    stack = getattr(_construction, "stack", None)
    if stack is None:
        stack = []
        _construction.stack = stack
    return stack


def _noop_handler(_event: Event) -> None:
    """Built-in no-op target for life-cycle events."""


class WorkItem(NamedTuple):
    """One delivered event awaiting execution.

    ``face`` identifies where the event arrived; handlers are re-matched
    against the face's subscriptions at execution time (Kompics port-queue
    semantics).  Items with ``face=None`` carry pre-bound handlers (used for
    fault escalation, which bypasses ports).

    A named tuple, not a slotted class: one is allocated per delivered
    event, and ``tuple.__new__`` skips the Python-level ``__init__`` frame.
    """

    event: Event
    face: Optional[PortFace]
    handlers: tuple
    is_control: bool


class ExecutionState:
    """Scheduler-facing execution states (paper section 3)."""

    IDLE = 0
    READY = 1
    BUSY = 2


# Hot-path locals: the single-threaded execution path compares these on
# every enqueue/execute; module globals skip two attribute loads each.
_IDLE = ExecutionState.IDLE
_READY = ExecutionState.READY
_BUSY = ExecutionState.BUSY
_DESTROYED = LifecycleState.DESTROYED
_FAULTY = LifecycleState.FAULTY
_PASSIVE = LifecycleState.PASSIVE
_LIFECYCLE = (Init, Start, Stop)


class ComponentDefinition:
    """Base class for component behaviours.

    Subclasses declare ports, state and handlers in ``__init__`` (after
    calling ``super().__init__()``) and react to events in ``@handles``
    methods.  All the Kompics operations (trigger, create, destroy, connect,
    disconnect, subscribe, unsubscribe) are methods on this class.
    """

    def __init__(self) -> None:
        stack = _construction_stack()
        if not stack:
            raise ConfigurationError(
                f"{type(self).__name__} must be created through create() or "
                f"ComponentSystem.bootstrap(), not instantiated directly"
            )
        self._core: ComponentCore = stack[-1]
        self.log = logging.getLogger(f"repro.{type(self).__name__}")

    # ----------------------------------------------------------- introspection

    @property
    def core(self) -> "ComponentCore":
        return self._core

    @property
    def system(self) -> "ComponentSystem":
        return self._core.system

    @property
    def control(self) -> PortFace:
        """Inside face of this component's control port (for Init/Start/Stop
        subscriptions)."""
        return self._core.control_port.inside

    def now(self) -> float:
        """Current time in seconds from the runtime clock.

        Components must use this (never ``time.time()``) so the same code
        runs under both the production clock and simulated time — the
        decoupling the paper achieves via bytecode instrumentation.
        """
        return self._core.system.clock.now()

    def random(self):
        """The system's seeded random source (deterministic in simulation)."""
        return self._core.system.random

    # ------------------------------------------------------------------ ports

    def provides(self, port_type: type[PortType]) -> PortFace:
        """Declare a provided port; returns its inside face."""
        return self._core.add_port(port_type, provided=True).inside

    def requires(self, port_type: type[PortType]) -> PortFace:
        """Declare a required port; returns its inside face."""
        return self._core.add_port(port_type, provided=False).inside

    # ------------------------------------------------------------- operations

    def subscribe(
        self,
        handler: HandlerFn,
        face: PortFace,
        event_type: Optional[type[Event]] = None,
    ) -> None:
        """Subscribe a handler to a port face (own port or a child's)."""
        subscription = make_subscription(handler, face, self._core, event_type)
        face.attach_subscription(subscription)
        face._handlers = None
        self._core.note_init_subscription(subscription, face)
        self.system.bump_generation()

    def unsubscribe(self, handler: HandlerFn, face: PortFace) -> None:
        """Remove this component's subscription of ``handler`` from ``face``."""
        for subscription in face.subscriptions:
            if subscription.handler == handler and subscription.owner is self._core:
                face.subscriptions.remove(subscription)
                face._handlers = None
                self.system.bump_generation()
                return
        raise ConfigurationError(f"{handler!r} is not subscribed at {face!r}")

    #: Asynchronously send an event through a port face.  A staticmethod
    #: bound straight to :func:`dispatch.trigger`: ``self`` plays no part,
    #: and handlers trigger on every delivered event, so the wrapper frame
    #: is pure overhead.
    trigger = staticmethod(dispatch.trigger)

    def create(
        self,
        definition: type["DefinitionT"],
        *args: object,
        init: Optional[Init] = None,
        name: Optional[str] = None,
        **kwargs: object,
    ) -> "Component":
        """Create a subcomponent (passive until started)."""
        core = ComponentCore(
            self.system, definition, args, kwargs, parent=self._core, name=name
        )
        self._core.children.append(core)
        self.system.bump_generation()
        if init is not None:
            dispatch.trigger(init, core.control_port.outside)
        return core.component

    def destroy(self, component: "Component") -> None:
        """Destroy a subcomponent, its subtree, and its channels."""
        component.core.destroy()

    def start_child(self, component: "Component") -> None:
        """Trigger Start on a child's control port."""
        dispatch.trigger(Start(), component.core.control_port.outside)

    def stop_child(self, component: "Component") -> None:
        """Trigger Stop on a child's control port."""
        dispatch.trigger(Stop(), component.core.control_port.outside)

    def connect(
        self,
        face_a: PortFace,
        face_b: PortFace,
        selector: Optional[channel_mod.Selector] = None,
    ) -> "Channel":
        """Connect two complementary port faces with a new channel."""
        return channel_mod.connect(face_a, face_b, selector=selector)

    def disconnect(self, face_a: PortFace, face_b: PortFace) -> None:
        """Destroy the channel between two faces."""
        channel_mod.disconnect(face_a, face_b)

    # ----------------------------------------------------------------- hooks

    def tear_down(self) -> None:
        """Called when the component is destroyed; override to release
        external resources (threads, sockets)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} ({self._core.name})>"


DefinitionT = TypeVar("DefinitionT", bound=ComponentDefinition)


class Component:
    """Parent-facing facade of a component (what ``create`` returns)."""

    __slots__ = ("core",)

    def __init__(self, core: "ComponentCore") -> None:
        self.core = core

    def provided(self, port_type: type[PortType]) -> PortFace:
        """Outside face of the component's provided port of ``port_type``."""
        return self.core.port(port_type, provided=True).outside

    def required(self, port_type: type[PortType]) -> PortFace:
        """Outside face of the component's required port of ``port_type``."""
        return self.core.port(port_type, provided=False).outside

    def control(self) -> PortFace:
        """Outside face of the component's control port."""
        return self.core.control_port.outside

    @property
    def definition(self) -> ComponentDefinition:
        return self.core.definition

    @property
    def state(self) -> LifecycleState:
        return self.core.state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Component {self.core.name} {self.core.state.value}>"


class ComponentCore:
    """Runtime state of one component instance.

    Slotted: one core exists per component, and a large simulation holds
    tens of thousands of them — dropping the per-instance ``__dict__``
    (and keeping the rarely-used admission buffer a plain list) is a
    measurable share of the bytes/peer budget (see
    ``benchmarks/bench_footprint.py``).
    """

    __slots__ = (
        "id",
        "system",
        "parent",
        "name",
        "children",
        "ports",
        "control_port",
        "state",
        "_exec_state",
        "_queue",
        "_qhead",
        "_buffer",
        "_lock",
        "_single_threaded",
        "_needs_init",
        "_init_received",
        "_fast_admit",
        "component",
        "definition",
    )

    def __init__(
        self,
        system: "ComponentSystem",
        definition_cls: type[ComponentDefinition],
        args: tuple = (),
        kwargs: Optional[dict] = None,
        parent: Optional["ComponentCore"] = None,
        name: Optional[str] = None,
    ) -> None:
        self.id = system.next_component_id()
        self.system = system
        self.parent = parent
        self.name = name or f"{definition_cls.__name__}-{self.id}"
        self.children: list[ComponentCore] = []
        self.ports: dict[tuple[type[PortType], bool], Port] = {}
        self.control_port = Port(ControlPort, self, is_provided=True, is_control=True)
        # Built-in life-cycle subscription: Start/Stop/Init must be
        # processed even when the definition subscribes no handler for them.
        # One Event-typed subscription covers all three — the control
        # port's type check restricts inside-face traffic to exactly the
        # lifecycle events, and Fault travels in the positive direction
        # (outside faces), so nothing else can ever match it.  It bypasses
        # note_init_subscription so it does not trip the Init-first
        # guarantee.
        self.control_port.inside.attach_subscription(
            Subscription(_noop_handler, Event, self.control_port.inside, self)
        )

        self.state = LifecycleState.PASSIVE
        self._exec_state = ExecutionState.IDLE
        #: The FIFO work queue: a plain list with a head index rather than
        #: a deque — an empty list is a fraction of an empty deque's size,
        #: and one queue exists per component.  ``_qhead`` points at the
        #: next item; the list is reset whenever the queue drains (the
        #: common case: deliver one, execute one), so the dead prefix
        #: cannot grow unboundedly.
        self._queue: list[WorkItem] = []
        self._qhead = 0
        #: Inadmissible items parked until a lifecycle transition; a plain
        #: list, not a deque — it only ever appends, drains wholesale in
        #: _flush_buffer_locked, and sits empty for a component's lifetime.
        self._buffer: list[WorkItem] = []
        self._lock = threading.Lock()
        # Under a single-threaded scheduler (deterministic simulation) every
        # state transition happens on the driving thread, so the hot paths
        # skip the lock entirely (see _enqueue and execute_slot).
        self._single_threaded = getattr(system, "_single_threaded", False)
        self._needs_init = False
        self._init_received = False
        # Cached admission verdict for receive_event's fast path: True only
        # while "single-threaded, initialized, started, healthy" is known to
        # hold.  Set lazily after one full check passes; cleared at every
        # transition that can change the answer (stop, fault, destroy, a
        # late Init subscription).  A stale False is merely slow; the
        # clearing sites keep True from ever going stale.
        self._fast_admit = False
        self.component = Component(self)

        stack = _construction_stack()
        stack.append(self)
        try:
            self.definition = definition_cls(*args, **(kwargs or {}))
        finally:
            stack.pop()
        system.register_component(self)

    # ------------------------------------------------------------------ ports

    def add_port(self, port_type: type[PortType], provided: bool) -> Port:
        key = (port_type, provided)
        if key in self.ports:
            raise ConfigurationError(
                f"{self.name} already declares a "
                f"{'provided' if provided else 'required'} {port_type.__name__} port"
            )
        port = Port(port_type, self, is_provided=provided)
        self.ports[key] = port
        return port

    def port(self, port_type: type[PortType], provided: bool) -> Port:
        try:
            return self.ports[(port_type, provided)]
        except KeyError:
            raise ConfigurationError(
                f"{self.name} has no "
                f"{'provided' if provided else 'required'} {port_type.__name__} port"
            ) from None

    def note_init_subscription(self, subscription, face: PortFace) -> None:
        """Track whether an Init handler exists, for the Init-first guarantee."""
        if (
            face.port is self.control_port
            and face.is_inside
            and issubclass(subscription.event_type, Init)
        ):
            self._needs_init = True
            self._fast_admit = False

    # --------------------------------------------------------------- delivery

    def receive_event(self, event: Event, face: PortFace) -> None:
        """Enqueue an event delivered at ``face`` (called by dispatch).

        Inlines the single-threaded branch of :meth:`_enqueue` (including
        ``ComponentSystem.component_ready``) for the started, initialized,
        healthy component — every delivered simulation event lands here.
        """
        item = WorkItem(event, face, (), face.is_control)
        if not self._fast_admit:
            if not self._single_threaded:
                self._enqueue(item)
                return
            state = self.state
            if state is _DESTROYED:
                return
            if (
                (not self._init_received and self._needs_init)
                or state is _PASSIVE
                or state is _FAULTY
            ):
                self._enqueue(item)
                return
            self._fast_admit = True
        self._queue.append(item)
        if self._exec_state == _IDLE:
            self._exec_state = _READY
            # component_ready, inlined (single-threaded branch).
            system = self.system
            if system._single_threaded:
                system._active += 1
                system.scheduler.schedule(self)
            else:
                system.component_ready(self)

    def receive_work(
        self, event: Event, handlers: tuple[HandlerFn, ...], is_control: bool
    ) -> None:
        """Enqueue an event with pre-bound handlers (fault escalation path)."""
        self._enqueue(WorkItem(event, None, handlers, is_control))

    def _enqueue(self, item: WorkItem) -> None:
        if self._single_threaded:
            state = self.state
            if state is _DESTROYED:
                return
            # Inlined _admissible fast path: a started, initialized, healthy
            # component admits everything (the overwhelmingly common case).
            if (
                (self._init_received or not self._needs_init)
                and state is not _PASSIVE
                and state is not _FAULTY
            ):
                self._queue.append(item)
                if self._exec_state == _IDLE:
                    self._exec_state = _READY
                    self.system.component_ready(self)
                return
            if not self._admissible(item):
                self._buffer.append(item)
                return
            self._queue.append(item)
            if self._exec_state == _IDLE:
                self._exec_state = _READY
                self.system.component_ready(self)
            return
        must_schedule = False
        with self._lock:
            if self.state is LifecycleState.DESTROYED:
                return
            if not self._admissible(item):
                self._buffer.append(item)
                return
            self._queue.append(item)
            if self._exec_state == ExecutionState.IDLE:
                self._exec_state = ExecutionState.READY
                must_schedule = True
        if must_schedule:
            self.system.component_ready(self)

    def _popleft(self) -> WorkItem:
        """Pop the next work item; reset the list whenever it drains.

        The invariant maintained here — the list is truthy iff live items
        remain — is what lets every ``if self._queue:`` emptiness check
        stay a plain truth test.
        """
        queue = self._queue
        head = self._qhead
        item = queue[head]
        head += 1
        if head == len(queue):
            queue.clear()
            self._qhead = 0
        else:
            queue[head - 1] = None  # type: ignore[call-overload]  # release the ref
            self._qhead = head
        return item

    def _admissible(self, item: WorkItem) -> bool:
        """May this work item enter the executable queue right now?"""
        if self._needs_init and not self._init_received:
            return isinstance(item.event, Init)
        state = self.state
        if state is _PASSIVE:
            return item.is_control
        if state is _FAULTY:
            return False
        return True

    def _flush_buffer_locked(self) -> None:
        """Re-offer buffered items after a state change (lock held)."""
        pending = list(self._buffer)
        self._buffer.clear()
        for item in pending:
            if self._admissible(item):
                self._queue.append(item)
            else:
                self._buffer.append(item)

    # -------------------------------------------------------------- execution

    def execute(self, max_events: int = 1) -> bool:
        """Execute up to ``max_events`` queued events.

        Returns True if the component is still READY (the caller must
        requeue it), False if it went idle.  Called only by schedulers; the
        BUSY state guarantees handler mutual exclusion.
        """
        with self._lock:
            if self._exec_state != ExecutionState.READY:
                return False
            self._exec_state = ExecutionState.BUSY

        executed = 0
        stopped_states = (LifecycleState.DESTROYED, LifecycleState.FAULTY)
        while executed < max_events:
            with self._lock:
                if self.state in stopped_states or not self._queue:
                    break
                item = self._popleft()
            self._execute_item(item)
            executed += 1

        with self._lock:
            if self.state in stopped_states or not self._queue:
                self._exec_state = ExecutionState.IDLE
                still_ready = False
            else:
                self._exec_state = ExecutionState.READY
                still_ready = True
        if not still_ready:
            self.system.component_idle(self)
        return still_ready

    def execute_slot(self) -> bool:
        """Single-threaded :meth:`execute` with ``max_events=1``.

        Same state transitions and return contract, but without the three
        lock round-trips — only the ManualScheduler's drain calls this, and
        there every transition happens on the driving thread.  The BUSY
        guard still matters: handlers triggering on their own component must
        see a non-IDLE state so _enqueue does not double-schedule.
        """
        if self._exec_state != _READY:
            return False
        self._exec_state = _BUSY
        queue = self._queue
        state = self.state
        if queue and state is not _DESTROYED and state is not _FAULTY:
            item = self._popleft()
            if self.system.tracer is not None or _race_observer is not None:
                self._execute_item(item)  # instrumented path (trace/race)
            else:
                if isinstance(item.event, _LIFECYCLE):
                    self._dispatch_item(item)
                else:
                    self._run_handlers(item)
            state = self.state  # the handler may have faulted or destroyed us
        if queue and state is not _DESTROYED and state is not _FAULTY:
            self._exec_state = _READY
            return True
        self._exec_state = _IDLE
        self.system.component_idle(self)
        return False

    def _execute_item(self, item: WorkItem) -> None:
        event = item.event
        tracer = self.system.tracer
        if tracer is not None:
            tracer.record(
                self.system.clock.now(), self.name, type(event).__name__
            )
        observer = _race_observer
        if observer is not None:
            observer.begin(self, item)
            try:
                self._dispatch_item(item)
            finally:
                observer.end(self, item)
            return
        self._dispatch_item(item)

    def _dispatch_item(self, item: WorkItem) -> None:
        event = item.event
        if isinstance(event, Init):
            self._handle_init(item)
        elif isinstance(event, Start):
            self._handle_start(item)
        elif isinstance(event, Stop):
            self._handle_stop(item)
        else:
            self._run_handlers(item)

    def _match_handlers(self, item: WorkItem) -> tuple[HandlerFn, ...]:
        face = item.face
        if face is None:
            return item.handlers
        event_type = type(item.event)
        # Matching is pure in (face subscriptions, owner, event type); the
        # per-face cache is reset whenever subscriptions mutate, so repeat
        # deliveries skip the subscription scan entirely.
        cache = face._handlers
        if cache is None:
            cache = {}
            face._handlers = cache
        key = (self, event_type)
        handlers = cache.get(key)
        if handlers is None:
            handlers = tuple(
                s.handler
                for s in tuple(face.subscriptions)
                if s.owner is self and issubclass(event_type, s.event_type)
            )
            cache[key] = handlers
        return handlers

    def _run_handlers(self, item: WorkItem) -> None:
        monitor = _sanitizer_monitor
        if monitor is not None:
            monitor.enter(self)  # raises ReentrancyError on violation
        try:
            # _match_handlers cache hit, inlined (one call frame per
            # executed event); misses fall through to the matching path.
            face = item.face
            if face is not None and (cache := face._handlers) is not None:
                handlers = cache.get((self, type(item.event)))
                if handlers is None:
                    handlers = self._match_handlers(item)
            else:
                handlers = self._match_handlers(item)
            for handler in handlers:
                try:
                    handler(item.event)
                except SanitizerError:
                    raise  # sanitizer violations surface immediately, unwrapped
                except Exception as exc:  # noqa: BLE001 - fault isolation boundary
                    self._fault(exc, item.event)
                    return
        finally:
            if monitor is not None:
                monitor.exit(self)

    def _fault(self, exc: BaseException, event: Event) -> None:
        """Wrap an uncaught handler exception per paper section 2.5."""
        with self._lock:
            self.state = LifecycleState.FAULTY
            self._fast_admit = False
        escalate(Fault(exc, self, event))

    def _handle_init(self, item: WorkItem) -> None:
        self._run_handlers(item)
        with self._lock:
            self._init_received = True
            self._flush_buffer_locked()

    def _handle_start(self, item: WorkItem) -> None:
        if self.state is LifecycleState.ACTIVE:
            return
        with self._lock:
            self.state = LifecycleState.ACTIVE
        self._run_handlers(item)
        for child in tuple(self.children):
            dispatch.trigger(Start(), child.control_port.outside)
        with self._lock:
            self._flush_buffer_locked()

    def _handle_stop(self, item: WorkItem) -> None:
        if self.state is not LifecycleState.ACTIVE:
            return
        self._run_handlers(item)
        with self._lock:
            self.state = LifecycleState.PASSIVE
            self._fast_admit = False
        for child in tuple(self.children):
            dispatch.trigger(Stop(), child.control_port.outside)

    # ----------------------------------------------------------- reconfig ops

    def drain_pending(self) -> list[WorkItem]:
        """Remove and return all delivered-but-unexecuted work items.

        Used by :func:`repro.core.reconfig.replace_component` to migrate
        in-queue events from a component being replaced to its successor,
        so that reconfiguration drops no triggered events.
        """
        with self._lock:
            items = [*self._queue[self._qhead :], *self._buffer]
            self._queue.clear()
            self._qhead = 0
            self._buffer.clear()
        return items

    def recover(self) -> None:
        """Clear a FAULTY state and resume executing queued events."""
        must_schedule = False
        with self._lock:
            if self.state is not LifecycleState.FAULTY:
                raise LifecycleError(f"{self.name} is not faulty")
            self.state = LifecycleState.ACTIVE
            self._flush_buffer_locked()
            if self._queue and self._exec_state == ExecutionState.IDLE:
                self._exec_state = ExecutionState.READY
                must_schedule = True
        if must_schedule:
            self.system.component_ready(self)

    def destroy(self) -> None:
        """Destroy this component, its subtree and all attached channels."""
        with self._lock:
            if self.state is LifecycleState.DESTROYED:
                return
            self.state = LifecycleState.DESTROYED
            self._fast_admit = False
            self._queue.clear()
            self._qhead = 0
            self._buffer.clear()
        for child in tuple(self.children):
            child.destroy()
        all_ports = [self.control_port, *self.ports.values()]
        for port in all_ports:
            for face in (port.inside, port.outside):
                for ch in tuple(face.channels):
                    ch.destroy()
                face.subscriptions = ()  # back to the shared empty sentinel
                face._plans = None  # drop compiled routes rooted here
        try:
            self.definition.tear_down()
        except Exception:  # noqa: BLE001 - teardown must not break destroy
            logging.getLogger("repro.core").exception(
                "tear_down of %s raised", self.name
            )
        if self.parent is not None and self in self.parent.children:
            self.parent.children.remove(self)
        self.system.unregister_component(self)
        self.system.bump_generation()

    # ------------------------------------------------------------- inspection

    @property
    def pending_events(self) -> int:
        with self._lock:
            return len(self._queue) - self._qhead + len(self._buffer)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ComponentCore {self.name} {self.state.value}>"
