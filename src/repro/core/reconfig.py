"""Dynamic reconfiguration: safe component replacement (paper section 2.6).

The paper's replacement protocol for swapping a component ``c1`` with a new
``c2`` exposing similar ports:

1. the parent puts on hold and unplugs all channels connected to ``c1``'s
   ports (events are queued, never dropped);
2. the parent passivates ``c1``, creates ``c2``, plugs the held channels
   into the matching ports of ``c2`` and resumes them;
3. ``c2`` is initialized with the state dumped by ``c1`` and activated;
4. the parent destroys ``c1``.

:func:`replace_component` implements exactly this sequence.  State handover
uses the :class:`Handover` convention: if the old definition implements
``dump_state()`` its result is passed to the new definition's
``load_state()`` (or wrapped in the supplied Init event factory).
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol, runtime_checkable

from . import dispatch
from .channel import Channel
from .component import Component, ComponentDefinition
from .errors import ConfigurationError
from .lifecycle import Init, Start, Stop

#: Reconfiguration state-transfer hook, installed by
#: :mod:`repro.analysis.race` while race tracking is active and None
#: otherwise.  Called as ``hook(old_core, new_core)`` once the replacement
#: component exists: everything the old component did happens-before
#: everything the new one will do.
_race_transfer = None


@runtime_checkable
class StatefulDefinition(Protocol):
    """Convention for state handover across a hot swap."""

    def dump_state(self) -> object: ...

    def load_state(self, state: object) -> None: ...


def replace_component(
    parent: ComponentDefinition,
    old: Component,
    new_definition: type[ComponentDefinition],
    *args: object,
    init: Optional[Init] = None,
    state_transfer: Optional[Callable[[object, ComponentDefinition], None]] = None,
    name: Optional[str] = None,
    **kwargs: object,
) -> Component:
    """Hot-swap ``old`` for a fresh instance of ``new_definition``.

    Returns the new component, already started, with every channel of the
    old component re-plugged and resumed.  No event in flight across those
    channels is dropped.
    """
    old_core = old.core
    if old_core.parent is not parent.core:
        raise ConfigurationError(
            f"{parent!r} is not the parent of {old_core.name}; only the "
            f"parent may replace a component"
        )

    # 1. Hold and unplug every channel touching the old component's ports.
    moved: list[tuple[Channel, type, bool, bool]] = []
    for (port_type, provided), port in old_core.ports.items():
        for face in (port.inside, port.outside):
            for channel in tuple(face.channels):
                channel.hold()
                channel.unplug(face)
                moved.append((channel, port_type, provided, face.is_inside))

    # 2. Passivate the old component and capture its state.
    dispatch.trigger(Stop(), old_core.control_port.outside)
    state = None
    if isinstance(old_core.definition, StatefulDefinition):
        state = old_core.definition.dump_state()

    # 3. Create the replacement and re-plug the channels.
    new = parent.create(new_definition, *args, init=init, name=name, **kwargs)
    for channel, port_type, provided, was_inside in moved:
        port = new.core.port(port_type, provided=provided)
        channel.plug(port.inside if was_inside else port.outside)

    # 3b. Migrate events already delivered to the old component but not yet
    # executed: re-inject them at the matching faces of the replacement so
    # the swap drops no triggered events.
    for item in old_core.drain_pending():
        face = item.face
        if face is None or face.port.is_control:
            continue
        port = new.core.ports.get((face.port_type, face.port.is_provided))
        if port is None:
            continue
        new.core.receive_event(item.event, port.inside if face.is_inside else port.outside)

    # 4. Transfer state, activate, resume traffic, destroy the old instance.
    hook = _race_transfer
    if hook is not None:
        hook(old_core, new.core)
    if state is not None:
        if state_transfer is not None:
            state_transfer(state, new.definition)
        elif isinstance(new.definition, StatefulDefinition):
            new.definition.load_state(state)
    dispatch.trigger(Start(), new.core.control_port.outside)
    for channel, *_ in moved:
        channel.resume()
    old_core.destroy()
    return new
