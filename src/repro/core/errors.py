"""Exception hierarchy for the Kompics-style component model.

All errors raised by the framework derive from :class:`KompicsError` so
applications can catch framework misuse separately from their own bugs.
"""

from __future__ import annotations


class KompicsError(Exception):
    """Base class for all framework errors."""


class PortTypeError(KompicsError):
    """An event type is not allowed to traverse a port in a direction."""


class ConnectionError(KompicsError):
    """Two port faces cannot be legally connected by a channel."""


class SubscriptionError(KompicsError):
    """A handler cannot be subscribed to a port face."""


class LifecycleError(KompicsError):
    """An operation was attempted in an illegal life-cycle state."""


class ConfigurationError(KompicsError):
    """The component system or a component was configured inconsistently."""


class SimulationError(KompicsError):
    """A deterministic-simulation invariant was violated."""


class SanitizerError(KompicsError):
    """A shared-state invariant was violated under the runtime sanitizer
    (see :mod:`repro.analysis.sanitizer`)."""


class EventMutationError(SanitizerError):
    """An event object was mutated after being triggered (rule S001).

    Events are fanned out by reference to every subscriber; mutating one
    after delivery is a data race under the threaded scheduler.
    """


class ReentrancyError(SanitizerError):
    """A component's handlers executed re-entrantly or concurrently
    (rule S002) — the mutual-exclusion guarantee of the model was
    bypassed, e.g. by invoking a handler directly outside the scheduler.
    """
