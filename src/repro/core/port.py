"""Ports: bidirectional, typed component interfaces (paper section 2.1).

A *port type* declares which event types may traverse the port in the
positive (indication) and negative (request) direction::

    class Timer(PortType):
        positive = (Timeout,)
        negative = (ScheduleTimeout, CancelTimeout)

A *port instance* belongs to a component and is either *provided* (the
component implements the abstraction) or *required* (the component uses it).
Each instance has two faces:

``inside``
    visible to the owning component (its handlers subscribe here; it
    triggers outgoing events here) and to its children through delegation
    channels.
``outside``
    visible in the parent's scope; sibling channels and parent
    subscriptions (e.g. Fault handlers) attach here.

Events carry a :class:`~repro.core.event.Direction`; the face geometry
determines whether an arriving event is delivered to subscriptions, crosses
the component boundary, or is forwarded along channels — see
:mod:`repro.core.dispatch`.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

from .errors import PortTypeError
from .event import Direction, Event

if TYPE_CHECKING:  # pragma: no cover
    from .channel import Channel
    from .component import ComponentCore
    from .handler import Subscription

_port_ids = itertools.count(1)


class PortType:
    """Base class for port type declarations.

    Subclasses declare ``positive`` and ``negative`` as iterables of event
    types.  There is no subtyping between port types (paper section 2.1);
    event subtyping is honoured when checking whether an event may pass.

    RPC-shaped ports may additionally declare ``responds_to``, mapping each
    request event type (negative direction) to the indication types
    (positive direction) that answer it.  The mapping is advisory metadata:
    the runtime never consults it, but the static flow analysis
    (:mod:`repro.analysis.flow`, rule F004) uses it to pair requests with
    their responses program-wide.
    """

    positive: tuple[type[Event], ...] = ()
    negative: tuple[type[Event], ...] = ()
    responds_to: dict[type[Event], tuple[type[Event], ...]] = {}

    def __init_subclass__(cls, **kwargs: object) -> None:
        super().__init_subclass__(**kwargs)
        cls.positive = tuple(cls.__dict__.get("positive", cls.positive))
        cls.negative = tuple(cls.__dict__.get("negative", cls.negative))
        for direction_name in ("positive", "negative"):
            for event_type in getattr(cls, direction_name):
                if not (isinstance(event_type, type) and issubclass(event_type, Event)):
                    raise PortTypeError(
                        f"{cls.__name__}.{direction_name} contains {event_type!r}, "
                        f"which is not an Event subclass"
                    )
        responds_to = cls.__dict__.get("responds_to", cls.responds_to)
        cls.responds_to = {
            request: (indications,) if isinstance(indications, type)
            else tuple(indications)
            for request, indications in responds_to.items()
        }
        for request, indications in cls.responds_to.items():
            if not isinstance(request, type) or not cls.allowed(Direction.NEGATIVE, request):
                raise PortTypeError(
                    f"{cls.__name__}.responds_to names {request!r} as a request, "
                    f"but it is not admitted in the negative direction"
                )
            for indication in indications:
                if not isinstance(indication, type) or not cls.allowed(
                    Direction.POSITIVE, indication
                ):
                    raise PortTypeError(
                        f"{cls.__name__}.responds_to pairs {request.__name__} with "
                        f"{indication!r}, which is not admitted in the positive "
                        f"direction"
                    )

    @classmethod
    def allowed(cls, direction: Direction, event_type: type[Event]) -> bool:
        """Return True if ``event_type`` may traverse in ``direction``."""
        # Memoized per concrete port type: ``positive``/``negative`` are
        # frozen at class-creation time and the event-type population is
        # finite, so the answer never changes.  ``__dict__`` lookup keeps
        # each subclass's cache separate (a plain attribute would be
        # inherited and poison siblings).
        cache = cls.__dict__.get("_allowed_cache")
        if cache is None:
            cache = {}
            cls._allowed_cache = cache
        key = (direction, event_type)
        verdict = cache.get(key)
        if verdict is None:
            declared = cls.positive if direction is Direction.POSITIVE else cls.negative
            verdict = any(issubclass(event_type, allowed) for allowed in declared)
            cache[key] = verdict
        return verdict

    @classmethod
    def direction_of(
        cls, event_type: type[Event], preferred: Direction
    ) -> Direction | None:
        """Resolve the direction an event travels, preferring ``preferred``.

        Some port types (e.g. Network) allow the same event type in both
        directions; the trigger site's role disambiguates.
        """
        if cls.allowed(preferred, event_type):
            return preferred
        if cls.allowed(preferred.opposite, event_type):
            return preferred.opposite
        return None


class PortFace:
    """One face of a port instance: a subscription and channel attachment point."""

    __slots__ = (
        "port",
        "is_inside",
        "is_control",
        "subscriptions",
        "channels",
        "_plans",
        "_fast",
        "_handlers",
        "incoming",
        "trigger_direction",
    )

    def __init__(self, port: "Port", is_inside: bool) -> None:
        self.port = port
        self.is_inside = is_inside
        self.is_control = port.is_control
        #: Both start as the shared empty tuple and are swapped for a real
        #: list on first attach (see ``attach_subscription`` /
        #: ``attach_channel``).  Most faces never gain a subscription or a
        #: channel, and a big simulation holds hundreds of thousands of
        #: faces — the sentinel saves one list allocation per empty slot.
        #: Read sites only iterate / test truthiness / use ``in``, which a
        #: tuple serves identically.
        self.subscriptions: "list[Subscription] | tuple" = ()
        self.channels: "list[Channel] | tuple" = ()
        #: Compiled-dispatch cache: ``(generation, {(event_type, direction):
        #: DeliveryPlan})`` or None; managed by :mod:`repro.core.routing`.
        self._plans: tuple[int, dict] | None = None
        #: Trigger fast-path cache: ``(generation, {event_class:
        #: DeliveryPlan})`` or None.  Populated by :func:`dispatch.trigger`
        #: after the port-type check passes, so a hit implies both "allowed"
        #: and "plan compiled" for the face's trigger direction.
        self._fast: tuple[int, dict] | None = None
        #: Direction of events delivered to subscriptions at this face —
        #: fixed by the face geometry, precomputed for the dispatch hot path:
        #:
        #: - provided/inside: NEGATIVE (requests entering the provider)
        #: - required/inside: POSITIVE (indications entering the requirer)
        #: - provided/outside: POSITIVE (indications leaving, seen by parent)
        #: - required/outside: NEGATIVE (requests leaving, seen by parent)
        if is_inside:
            self.incoming = (
                Direction.NEGATIVE if port.is_provided else Direction.POSITIVE
            )
        else:
            self.incoming = (
                Direction.POSITIVE if port.is_provided else Direction.NEGATIVE
            )
        #: Direction an event triggered *at this face* travels: the owner
        #: emits outgoing events on the inside face; a parent pushes inward
        #: across the boundary on the outside face.
        self.trigger_direction = (
            self.incoming.opposite if is_inside else port.boundary_inward
        )
        #: Handler-match cache: ``{(core, event_type): (handler, ...)}`` or
        #: None; reset whenever ``subscriptions`` mutates (see
        #: ComponentCore.subscribe/unsubscribe).
        self._handlers: dict | None = None

    def attach_subscription(self, subscription: "Subscription") -> None:
        """Append to ``subscriptions``, materialising the list on first use."""
        current = self.subscriptions
        if type(current) is tuple:
            self.subscriptions = current = []
        current.append(subscription)

    def attach_channel(self, channel: "Channel") -> None:
        """Append to ``channels``, materialising the list on first use."""
        current = self.channels
        if type(current) is tuple:
            self.channels = current = []
        current.append(channel)

    @property
    def owner(self) -> "ComponentCore":
        return self.port.owner

    @property
    def port_type(self) -> type[PortType]:
        return self.port.port_type

    @property
    def emits(self) -> Direction:
        """Direction this face emits *into attached channels* (its channel role).

        A provided port's outside face plays the provider role (emits
        POSITIVE); the same port's inside face plays the *requirer* role
        toward delegation channels (emits NEGATIVE), and symmetrically for
        required ports.
        """
        if self.is_inside:
            return Direction.NEGATIVE if self.port.is_provided else Direction.POSITIVE
        return Direction.POSITIVE if self.port.is_provided else Direction.NEGATIVE

    @property
    def other_face(self) -> "PortFace":
        return self.port.inside if not self.is_inside else self.port.outside

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        side = "inside" if self.is_inside else "outside"
        kind = "provided" if self.port.is_provided else "required"
        return (
            f"<PortFace {self.port.port_type.__name__} {kind}/{side} "
            f"of {self.port.owner.name}>"
        )


class Port:
    """A port instance: a typed, bidirectional gate owned by one component."""

    __slots__ = ("port_type", "owner", "is_provided", "is_control", "inside", "outside", "id")

    def __init__(
        self,
        port_type: type[PortType],
        owner: "ComponentCore",
        is_provided: bool,
        is_control: bool = False,
    ) -> None:
        self.id = next(_port_ids)
        self.port_type = port_type
        self.owner = owner
        self.is_provided = is_provided
        self.is_control = is_control
        self.inside = PortFace(self, is_inside=True)
        self.outside = PortFace(self, is_inside=False)

    @property
    def boundary_inward(self) -> Direction:
        """Direction of events that cross this port outside -> inside."""
        return Direction.NEGATIVE if self.is_provided else Direction.POSITIVE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "provided" if self.is_provided else "required"
        return f"<Port {self.port_type.__name__} {kind} of {self.owner.name}>"


def check_faces_connectable(a: PortFace, b: PortFace) -> tuple[PortFace, PortFace]:
    """Validate a channel connection and return ``(provider_face, requirer_face)``.

    A channel connects two complementary faces of the same port type: one
    that emits POSITIVE events into the channel (provider role) and one that
    emits NEGATIVE (requirer role).
    """
    from .errors import ConnectionError as KConnectionError

    if a.port_type is not b.port_type:
        raise KConnectionError(
            f"cannot connect ports of different types: "
            f"{a.port_type.__name__} and {b.port_type.__name__}"
        )
    roles = {a.emits: a, b.emits: b}
    if set(roles) != {Direction.POSITIVE, Direction.NEGATIVE}:
        raise KConnectionError(
            f"cannot connect two {a.emits.value}-role faces of {a.port_type.__name__}: "
            f"{a!r} and {b!r}"
        )
    return roles[Direction.POSITIVE], roles[Direction.NEGATIVE]
