"""Hierarchical timer wheel: the near-future index of the event queue.

The simulation workload is dominated by short, cancel-heavy periodic
traffic — failure-detector pings, Cyclon shuffles, CATS stabilization — all
scheduled within a few seconds of *now*.  A binary heap pays O(log n)
Python-level comparisons per operation and cannot unlink a cancelled entry
before its deadline.  The wheel turns both into O(1) dictionary/bitmap
operations:

- virtual time is quantized into *ticks* (default 1/256 s); each level of
  the hierarchy covers 256 ticks of the level below, so three levels span
  ~18 simulated hours at full resolution near the cursor;
- a slot holds a dict mapping *exact float timestamps* to payloads, so
  quantization never reorders events — the front scan returns ``min()`` of
  the earliest occupied slot, which is exact;
- occupancy is one Python int bitmap per level; the next occupied slot is
  found with ``(mask >> start) & -(mask >> start)`` bit tricks, not a scan;
- entries beyond the top level fall back to a heap of *floats* (C-level
  comparisons), with dead timestamps tombstoned and the heap rebuilt once
  tombstones outnumber live entries.

Payload contract: the wheel stores one payload per distinct timestamp and
writes its location into the payload's writable ``loc`` attribute (an int;
``-1`` means the far heap) so ``remove`` is O(1) without an extra index.

Distinct from :mod:`repro.timer.wheel`, the *real-time* hashed wheel behind
``ThreadTimer``: this module indexes virtual time inside the simulation's
:class:`~repro.simulation.event_queue.EventQueue`.
"""

from __future__ import annotations

import heapq
from typing import Optional

#: log2 of slots per level: 256 slots, one byte of the tick counter each.
SLOT_BITS = 8
SLOTS = 1 << SLOT_BITS
_MASK = SLOTS - 1
#: wheel levels before falling back to the far-future heap.
LEVELS = 3
#: ticks per simulated second (tick size ~3.9 ms).
TICKS_PER_SECOND = 256


def _next_bit(mask: int, start: int) -> int:
    """Lowest set bit index >= ``start``, or -1."""
    shifted = mask >> start
    if not shifted:
        return -1
    return start + (shifted & -shifted).bit_length() - 1


class TimerWheel:
    """Three-level timer wheel over quantized virtual time, plus a far heap.

    The *cursor* is the tick of the last popped timestamp; it only moves
    forward.  Timestamps at or before the cursor (possible after a horizon
    advance) are clamped into the cursor's own slot — exact-float ordering
    inside the slot keeps them firing in the right order.
    """

    __slots__ = ("_slots", "_occ", "_cursor", "_far", "_far_map", "_far_dead", "_count")

    def __init__(self) -> None:
        self._slots: list[list[Optional[dict]]] = [
            [None] * SLOTS for _ in range(LEVELS)
        ]
        self._occ = [0] * LEVELS
        self._cursor = 0
        self._far: list[float] = []  # min-heap of timestamps (may hold tombstones)
        self._far_map: dict[float, object] = {}  # live far timestamps only
        self._far_dead = 0
        self._count = 0

    def __len__(self) -> int:
        return self._count

    # ------------------------------------------------------------- placement

    def insert(self, time: float, payload) -> None:
        """Index ``payload`` under exact timestamp ``time`` (one per time)."""
        tick = int(time * TICKS_PER_SECOND)
        if tick < self._cursor:
            tick = self._cursor
        self._place(tick, time, payload)
        self._count += 1

    def _place(self, tick: int, time: float, payload) -> None:
        cursor = self._cursor
        if tick >> SLOT_BITS == cursor >> SLOT_BITS:
            level, slot = 0, tick & _MASK
        elif tick >> (2 * SLOT_BITS) == cursor >> (2 * SLOT_BITS):
            level, slot = 1, (tick >> SLOT_BITS) & _MASK
        elif tick >> (3 * SLOT_BITS) == cursor >> (3 * SLOT_BITS):
            level, slot = 2, (tick >> (2 * SLOT_BITS)) & _MASK
        else:
            payload.loc = -1
            self._far_map[time] = payload
            heapq.heappush(self._far, time)
            return
        cell = self._slots[level][slot]
        if cell is None:
            cell = self._slots[level][slot] = {}
        cell[time] = payload
        self._occ[level] |= 1 << slot
        payload.loc = (level << SLOT_BITS) | slot

    def remove(self, time: float, payload) -> None:
        """Unlink the payload stored under ``time`` (O(1))."""
        loc = payload.loc
        if loc < 0:
            del self._far_map[time]
            self._far_dead += 1
            # Lazy compaction: rebuild once tombstones outnumber live far
            # entries, so cancelled debris never dominates the heap.
            if self._far_dead > 64 and self._far_dead * 2 > len(self._far):
                self._far = list(self._far_map)
                heapq.heapify(self._far)
                self._far_dead = 0
        else:
            level, slot = loc >> SLOT_BITS, loc & _MASK
            cell = self._slots[level][slot]
            del cell[time]
            if not cell:
                self._occ[level] &= ~(1 << slot)
        self._count -= 1

    # ------------------------------------------------------------ front scan

    def _front(self) -> int:
        """Cascade until level 0 holds the earliest entry; return its slot
        index, or -1 when the wheel is empty.  Advances the cursor."""
        while True:
            slot = _next_bit(self._occ[0], self._cursor & _MASK)
            if slot >= 0:
                return slot
            if self._cascade(1):
                continue
            if self._cascade(2):
                continue
            if self._pull_far():
                continue
            return -1

    def _cascade(self, level: int) -> bool:
        """Move the next occupied slot of ``level`` down; False if none."""
        shift = level * SLOT_BITS
        slot = _next_bit(self._occ[level], (self._cursor >> shift) & _MASK)
        if slot < 0:
            return False
        cell = self._slots[level][slot]
        self._slots[level][slot] = None
        self._occ[level] &= ~(1 << slot)
        # Jump the cursor to the start of that slot's window: everything
        # earlier is provably empty (the cursor trails the global minimum).
        above = self._cursor >> (shift + SLOT_BITS)
        self._cursor = ((above << SLOT_BITS) | slot) << shift
        for time, payload in cell.items():
            self._place(int(time * TICKS_PER_SECOND), time, payload)
        return True

    def _pull_far(self) -> bool:
        """Reindex the earliest far-heap window into the wheel; False if empty."""
        far, far_map = self._far, self._far_map
        while far and far[0] not in far_map:
            heapq.heappop(far)  # tombstone of a removed timestamp
            self._far_dead -= 1
        if not far:
            return False
        top_shift = LEVELS * SLOT_BITS
        first_tick = int(far[0] * TICKS_PER_SECOND)
        window = first_tick >> top_shift
        self._cursor = first_tick
        while far:
            time = far[0]
            if time not in far_map:
                heapq.heappop(far)
                self._far_dead -= 1
                continue
            if int(time * TICKS_PER_SECOND) >> top_shift != window:
                break
            heapq.heappop(far)
            self._place(int(time * TICKS_PER_SECOND), time, far_map.pop(time))
        return True

    def peek(self) -> Optional[float]:
        """The earliest stored timestamp, or None."""
        slot = self._front()
        if slot < 0:
            return None
        return min(self._slots[0][slot])

    def pop(self, until: Optional[float] = None):
        """Remove and return ``(time, payload)`` for the earliest timestamp.

        With ``until`` given, a minimum beyond it is *peeked, not popped*:
        the result is ``(time, None)`` and the wheel is unchanged.  This
        folds the run loop's peek-then-pop pair into one front scan.
        """
        slot = self._front()
        if slot < 0:
            return None
        cell = self._slots[0][slot]
        time = min(cell)
        if until is not None and time > until:
            return time, None
        payload = cell.pop(time)
        if not cell:
            self._occ[0] &= ~(1 << slot)
        tick = int(time * TICKS_PER_SECOND)
        if tick > self._cursor:
            self._cursor = tick
        self._count -= 1
        return time, payload

    # ------------------------------------------------------------ inspection

    def stats(self) -> dict:
        """Internal sizes, for tests pinning boundedness under churn."""
        return {
            "count": self._count,
            "far_heap": len(self._far),
            "far_live": len(self._far_map),
            "far_dead": self._far_dead,
        }
