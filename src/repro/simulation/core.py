"""The deterministic simulation runtime (paper section 3, "Deterministic
Simulation Mode").

A :class:`Simulation` wraps a :class:`~repro.runtime.system.ComponentSystem`
whose clock is virtual, whose scheduler is the deterministic FIFO
:class:`~repro.runtime.scheduler.ManualScheduler`, and whose time-dependent
services (timers, the network emulator) post to one discrete-event queue.

The simulation loop alternates two phases, exactly like the paper's
simulation scheduler: execute ready components until quiescence, then
advance virtual time to the next queued event and dispatch it.  Given the
same seed and the same component code, every run is identical.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..core.errors import SimulationError
from ..runtime.clock import VirtualClock
from ..runtime.scheduler import ManualScheduler
from ..runtime.system import ComponentSystem
from .event_queue import EventQueue

QUEUE_SERVICE = "simulation_event_queue"

#: Timed-dispatch hook, installed by :mod:`repro.analysis.race` while race
#: tracking is active and None otherwise.  When set, each popped queue
#: entry is executed through ``hook(entry)`` so its action runs in a fresh
#: logical context seeded from the entry's schedule-time vector clock —
#: consecutive timed dispatches are *not* ordered with each other (the
#: loop's serialization is an artifact), only with their schedulers.
_race_dispatch_entry = None


class Simulation:
    """A deterministic, virtual-time component system."""

    def __init__(
        self,
        seed: int = 0,
        fault_policy: str = "raise",
        prune_channels: bool = True,
        compiled_dispatch: Optional[bool] = None,
        name: str = "simulation",
    ) -> None:
        self.clock = VirtualClock()
        self.scheduler = ManualScheduler()
        self.queue = EventQueue()
        # The deterministic runtime dispatches through the same compiled
        # plans as the production system: plan compilation depends only on
        # the topology, never on time or scheduling, so simulated traces
        # are engine-independent (the differential suite pins this).
        self.system = ComponentSystem(
            scheduler=self.scheduler,
            clock=self.clock,
            seed=seed,
            fault_policy=fault_policy,
            prune_channels=prune_channels,
            compiled_dispatch=compiled_dispatch,
            name=name,
        )
        self.system.register_service(QUEUE_SERVICE, self.queue)
        self._stop_requested = False
        self.events_dispatched = 0

    # ------------------------------------------------------------- scheduling

    def now(self) -> float:
        return self.clock.now()

    def schedule(self, delay: float, action: Callable[[], None]):
        """Schedule an action ``delay`` virtual seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.queue.schedule(self.clock.now() + delay, action)

    def stop(self) -> None:
        """Request the run loop to stop after the current dispatch."""
        self._stop_requested = True

    # -------------------------------------------------------------- main loop

    def run(
        self,
        until: Optional[float] = None,
        max_dispatches: Optional[int] = None,
    ) -> str:
        """Run the simulation; returns why it stopped.

        ``"quiescent"``  — no ready components and no future events;
        ``"horizon"``    — the next event lies beyond ``until``;
        ``"stopped"``    — :meth:`stop` was called;
        ``"budget"``     — ``max_dispatches`` timed events were dispatched.
        """
        self._stop_requested = False
        while True:
            self.scheduler.run_to_quiescence()
            if self._stop_requested:
                return "stopped"
            if max_dispatches is not None and self.events_dispatched >= max_dispatches:
                return "budget"
            next_time = self.queue.peek_time()
            if next_time is None:
                return "quiescent"
            if until is not None and next_time > until:
                self.clock.advance_to(until)
                return "horizon"
            entry = self.queue.pop_due()
            assert entry is not None
            self.clock.advance_to(entry.time)
            self.events_dispatched += 1
            hook = _race_dispatch_entry
            if hook is None:
                entry.action()
            else:
                hook(entry)

    # ------------------------------------------------------------ convenience

    def bootstrap(self, definition, *args, **kwargs):
        return self.system.bootstrap(definition, *args, **kwargs)

    def shutdown(self) -> None:
        self.system.shutdown()


def queue_of(system: ComponentSystem) -> EventQueue:
    """The simulation event queue of ``system`` (simulation mode only)."""
    queue = system.services.get(QUEUE_SERVICE)
    if queue is None:
        raise SimulationError(
            "this ComponentSystem is not running in simulation mode "
            f"(no {QUEUE_SERVICE!r} service)"
        )
    return queue  # type: ignore[return-value]
