"""The deterministic simulation runtime (paper section 3, "Deterministic
Simulation Mode").

A :class:`Simulation` wraps a :class:`~repro.runtime.system.ComponentSystem`
whose clock is virtual, whose scheduler is the deterministic FIFO
:class:`~repro.runtime.scheduler.ManualScheduler`, and whose time-dependent
services (timers, the network emulator) post to one discrete-event queue.

The simulation loop alternates two phases, exactly like the paper's
simulation scheduler: execute ready components until quiescence, then
advance virtual time to the next queued event and dispatch it.  Given the
same seed and the same component code, every run is identical.

Two run-loop engines share that contract (see ``docs/internals.md``,
"Simulation hot path"):

- the default *batched* loop pops every entry due at the next timestamp in
  one queue operation and dispatches them back-to-back — draining the
  scheduler after each entry, so the executed trace is identical to the
  entry-at-a-time loop;
- the *legacy* loop (one pop per dispatch) runs whenever exactness of pop
  granularity matters: the ``REPRO_SIM_QUEUE=heap`` oracle engine, an
  installed ``picker`` (schedule exploration), or a ``max_dispatches``
  budget.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..core.errors import SimulationError
from ..runtime.clock import VirtualClock
from ..runtime.scheduler import ManualScheduler
from ..runtime.system import ComponentSystem
from .event_queue import HeapEventQueue, make_event_queue

QUEUE_SERVICE = "simulation_event_queue"

#: Timed-dispatch hook, installed by :mod:`repro.analysis.race` while race
#: tracking is active and None otherwise.  When set, each popped queue
#: entry is executed through ``hook(entry)`` so its action runs in a fresh
#: logical context seeded from the entry's schedule-time vector clock —
#: consecutive timed dispatches are *not* ordered with each other (the
#: loop's serialization is an artifact), only with their schedulers.
_race_dispatch_entry = None


class Simulation:
    """A deterministic, virtual-time component system."""

    def __init__(
        self,
        seed: int = 0,
        fault_policy: str = "raise",
        prune_channels: bool = True,
        compiled_dispatch: Optional[bool] = None,
        name: str = "simulation",
        queue_engine: Optional[str] = None,
    ) -> None:
        self.clock = VirtualClock()
        self.scheduler = ManualScheduler()
        #: ``"wheel"`` (default) or ``"heap"`` (the reference oracle);
        #: None reads ``REPRO_SIM_QUEUE``.
        self.queue = make_event_queue(queue_engine)
        self.queue_engine = "heap" if isinstance(self.queue, HeapEventQueue) else "wheel"
        # The deterministic runtime dispatches through the same compiled
        # plans as the production system: plan compilation depends only on
        # the topology, never on time or scheduling, so simulated traces
        # are engine-independent (the differential suite pins this).
        self.system = ComponentSystem(
            scheduler=self.scheduler,
            clock=self.clock,
            seed=seed,
            fault_policy=fault_policy,
            prune_channels=prune_channels,
            compiled_dispatch=compiled_dispatch,
            name=name,
        )
        self.system.register_service(QUEUE_SERVICE, self.queue)
        if self.queue_engine == "heap":
            # The oracle engine is the pre-wheel simulator end to end: the
            # entry-at-a-time loop *and* the generic locked execution paths
            # (run_to_quiescence/execute, condition-locked ready/idle).
            # Differential tests then pin the whole new engine, and the
            # benchmark ratio measures the whole overhaul.  Must be set
            # before bootstrap: component cores cache the flag.
            self.system._single_threaded = False
        self._stop_requested = False
        self.events_dispatched = 0
        # Same-timestamp entries not yet dispatched when stop() interrupted
        # a batch; the next run() resumes them before touching the queue.
        self._pending_batch: Optional[list] = None
        self._pending_index = 0

    # ------------------------------------------------------------- scheduling

    def now(self) -> float:
        return self.clock.now()

    def schedule(self, delay: float, action: Callable[[], None]):
        """Schedule an action ``delay`` virtual seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.queue.schedule(self.clock.now() + delay, action)

    def stop(self) -> None:
        """Request the run loop to stop after the current dispatch."""
        self._stop_requested = True

    # -------------------------------------------------------------- main loop

    def run(
        self,
        until: Optional[float] = None,
        max_dispatches: Optional[int] = None,
    ) -> str:
        """Run the simulation; returns why it stopped.

        ``"quiescent"``  — no ready components and no future events;
        ``"horizon"``    — the next event lies beyond ``until``;
        ``"stopped"``    — :meth:`stop` was called;
        ``"budget"``     — ``max_dispatches`` timed events were dispatched.
        """
        self._stop_requested = False
        if (
            self.queue_engine != "wheel"
            or self.queue.picker is not None
            or max_dispatches is not None
        ):
            return self._run_legacy(until, max_dispatches)
        return self._run_batched(until)

    def _run_batched(self, until: Optional[float]) -> str:
        """Batched timed dispatch: one queue pop per timestamp.

        Equivalent to the legacy loop entry-for-entry — each batch entry is
        re-checked for cancellation, dispatched through the race hook when
        installed, and followed by a full scheduler drain — so executed
        traces (and ``Tracer.fingerprint()``) are byte-identical.
        """
        queue = self.queue
        clock = self.clock
        drain = self.scheduler.drain
        drain()
        if self._stop_requested:
            return "stopped"
        batch = self._pending_batch or ()
        index = self._pending_index
        self._pending_batch = None
        dispatched = self.events_dispatched
        fired = 0
        try:
            while True:
                size = len(batch)
                while index < size:
                    entry = batch[index]
                    index += 1
                    if entry.cancelled:
                        continue
                    dispatched += 1
                    fired += 1
                    hook = _race_dispatch_entry
                    if hook is None:
                        entry.action()
                    else:
                        hook(entry)
                    drain()
                    if self._stop_requested:
                        if index < size:
                            self._pending_batch = list(batch)
                            self._pending_index = index
                        return "stopped"
                popped = queue.pop_batch(until)
                if popped is None:
                    return "quiescent"
                time, batch = popped
                if batch is None:
                    clock.advance_to(until)
                    return "horizon"
                index = 0
                clock.advance_to(time)
        finally:
            self.events_dispatched = dispatched
            queue.fired_total += fired

    def _run_legacy(
        self, until: Optional[float], max_dispatches: Optional[int]
    ) -> str:
        """The original entry-at-a-time loop (oracle / picker / budget)."""
        pending = self._pending_batch
        if pending is not None:
            # A batch interrupted by stop() under the batched loop (only the
            # wheel engine batches): re-queue the undispatched tail at its
            # original (time, sequence) so nothing is lost or reordered.
            self._pending_batch = None
            for entry in pending[self._pending_index:]:
                if not entry.cancelled:
                    self.queue._append(entry)
        while True:
            self.scheduler.run_to_quiescence()
            if self._stop_requested:
                return "stopped"
            if max_dispatches is not None and self.events_dispatched >= max_dispatches:
                return "budget"
            next_time = self.queue.peek_time()
            if next_time is None:
                return "quiescent"
            if until is not None and next_time > until:
                self.clock.advance_to(until)
                return "horizon"
            entry = self.queue.pop_due()
            assert entry is not None
            self.clock.advance_to(entry.time)
            self.events_dispatched += 1
            hook = _race_dispatch_entry
            if hook is None:
                entry.action()
            else:
                hook(entry)

    # -------------------------------------------------------------- profiling

    def profile(self):
        """Start collecting a hot-path profile; returns the profiler.

        Usage::

            with sim.profile() as prof:
                sim.run(until=...)
            print(prof.report(top=10))

        See :class:`repro.simulation.profile.SimulationProfiler`.
        """
        from .profile import SimulationProfiler

        return SimulationProfiler(self)

    # ------------------------------------------------------------ convenience

    def bootstrap(self, definition, *args, **kwargs):
        return self.system.bootstrap(definition, *args, **kwargs)

    def shutdown(self) -> None:
        self.system.shutdown()


def queue_of(system: ComponentSystem):
    """The simulation event queue of ``system`` (simulation mode only)."""
    queue = system.services.get(QUEUE_SERVICE)
    if queue is None:
        raise SimulationError(
            "this ComponentSystem is not running in simulation mode "
            f"(no {QUEUE_SERVICE!r} service)"
        )
    return queue  # type: ignore[return-value]
