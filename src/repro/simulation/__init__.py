"""Deterministic whole-system simulation (paper sections 3 and 4.2-4.4).

The same component code that runs on the production runtime runs here in
virtual time: :class:`Simulation` pairs a FIFO deterministic scheduler with
a discrete-event queue; :class:`SimTimer` and :class:`EmulatedNetwork` are
drop-in providers of the Timer and Network abstractions; the scenario DSL
composes stochastic processes into reproducible experiments.
"""

from .core import QUEUE_SERVICE, Simulation, queue_of
from .distributions import (
    Constant,
    Distribution,
    Exponential,
    KeyUniform,
    Normal,
    Uniform,
    UniformInt,
    constant,
    exponential,
    key_uniform,
    normal,
    uniform,
    uniform_int,
)
from .emulator import EmulatedNetwork, EmulatorCore, emulator_of
from .event_queue import EventQueue, HeapEventQueue, ScheduledEntry, make_event_queue
from .wheel import TimerWheel
from .latency import (
    ConstantLatency,
    LatencyModel,
    NormalLatency,
    PairwiseLatency,
    UniformLatency,
)
from .scenario import Scenario, StochasticProcess
from .sim_timer import SimTimer

__all__ = [
    "Constant",
    "ConstantLatency",
    "Distribution",
    "EmulatedNetwork",
    "EmulatorCore",
    "EventQueue",
    "Exponential",
    "HeapEventQueue",
    "KeyUniform",
    "LatencyModel",
    "Normal",
    "NormalLatency",
    "PairwiseLatency",
    "QUEUE_SERVICE",
    "Scenario",
    "ScheduledEntry",
    "SimTimer",
    "Simulation",
    "StochasticProcess",
    "TimerWheel",
    "Uniform",
    "UniformInt",
    "UniformLatency",
    "constant",
    "emulator_of",
    "exponential",
    "key_uniform",
    "make_event_queue",
    "normal",
    "queue_of",
    "uniform",
    "uniform_int",
]
