"""Random-variate distributions for the experiment-scenario DSL (paper §4.4).

All sampling goes through the system's seeded ``random.Random``, keeping
scenario generation deterministic per seed.
"""

from __future__ import annotations

import abc
import random


class Distribution(abc.ABC):
    """A source of random values drawn from a shared RNG."""

    @abc.abstractmethod
    def sample(self, rng: random.Random): ...


class Constant(Distribution):
    def __init__(self, value) -> None:
        self.value = value

    def sample(self, rng):
        return self.value

    def __repr__(self) -> str:
        return f"constant({self.value})"


class Uniform(Distribution):
    def __init__(self, low: float, high: float) -> None:
        self.low = low
        self.high = high

    def sample(self, rng):
        return rng.uniform(self.low, self.high)

    def __repr__(self) -> str:
        return f"uniform({self.low}, {self.high})"


class UniformInt(Distribution):
    def __init__(self, low: int, high: int) -> None:
        self.low = low
        self.high = high

    def sample(self, rng):
        return rng.randint(self.low, self.high)

    def __repr__(self) -> str:
        return f"uniform_int({self.low}, {self.high})"


class KeyUniform(Distribution):
    """Uniform identifiers from ``[0, 2**bits)`` — the paper's ``uniform(16)``."""

    def __init__(self, bits: int) -> None:
        self.bits = bits

    def sample(self, rng):
        return rng.randrange(0, 1 << self.bits)

    def __repr__(self) -> str:
        return f"key_uniform({self.bits})"


class Exponential(Distribution):
    """Exponential with the given *mean* (the paper parameterizes by mean)."""

    def __init__(self, mean: float) -> None:
        if mean <= 0:
            raise ValueError("mean must be positive")
        self.mean = mean

    def sample(self, rng):
        return rng.expovariate(1.0 / self.mean)

    def __repr__(self) -> str:
        return f"exponential(mean={self.mean})"


class Normal(Distribution):
    """Gaussian truncated below at ``minimum`` (inter-arrival times >= 0)."""

    def __init__(self, mean: float, stddev: float, minimum: float = 0.0) -> None:
        self.mean = mean
        self.stddev = stddev
        self.minimum = minimum

    def sample(self, rng):
        return max(self.minimum, rng.gauss(self.mean, self.stddev))

    def __repr__(self) -> str:
        return f"normal({self.mean}, {self.stddev})"


# Convenience constructors mirroring the paper's DSL vocabulary.


def constant(value) -> Constant:
    return Constant(value)


def uniform(low: float, high: float) -> Uniform:
    return Uniform(low, high)


def uniform_int(low: int, high: int) -> UniformInt:
    return UniformInt(low, high)


def key_uniform(bits: int) -> KeyUniform:
    return KeyUniform(bits)


def exponential(mean: float) -> Exponential:
    return Exponential(mean)


def normal(mean: float, stddev: float) -> Normal:
    return Normal(mean, stddev)
