"""The experiment-scenario DSL (paper section 4.4).

A scenario is a parallel and/or sequential composition of *stochastic
processes*: finite random sequences of operations with a configured
inter-arrival-time distribution.  The paper's example translates directly::

    boot = (StochasticProcess("boot")
            .event_inter_arrival_time(exponential(2.0))
            .raise_events(1000, cats_join, key_uniform(16)))

    churn = (StochasticProcess("churn")
             .event_inter_arrival_time(exponential(0.5))
             .raise_events(500, cats_join, key_uniform(16))
             .raise_events(500, cats_fail, key_uniform(16)))

    lookups = (StochasticProcess("lookups")
               .event_inter_arrival_time(normal(0.05, 0.01))
               .raise_events(5000, cats_lookup, key_uniform(16), key_uniform(14)))

    scenario = Scenario()
    scenario.start(boot)
    scenario.start_after_termination_of(2.0, boot, churn)
    scenario.start_after_start_of(3.0, churn, lookups)
    scenario.terminate_after_termination_of(1.0, lookups)
    scenario.simulate(simulation, sink)     # deterministic virtual time
    # scenario.execute(system, sink)        # same scenario, real time

Operations are plain callables taking the sampled arguments and returning a
command event (or ``None``); the *sink* — typically a trigger onto an
experiment port — consumes them.  When a process declares several
``raise_events`` groups, their operations are randomly interleaved (the
paper's churn process: 500 joins interleaved with 500 failures).
"""

from __future__ import annotations

import random
import threading
from typing import Callable, Optional

from ..core.errors import ConfigurationError
from .core import Simulation
from .distributions import Distribution

Operation = Callable[..., object]
Sink = Callable[[object], None]


class StochasticProcess:
    """A finite random sequence of operations."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.inter_arrival: Optional[Distribution] = None
        self.groups: list[tuple[int, Operation, tuple[Distribution, ...]]] = []

    def event_inter_arrival_time(self, distribution: Distribution) -> "StochasticProcess":
        self.inter_arrival = distribution
        return self

    def raise_events(
        self, count: int, operation: Operation, *argument_distributions: Distribution
    ) -> "StochasticProcess":
        if count < 1:
            raise ConfigurationError("raise_events needs a positive count")
        self.groups.append((count, operation, argument_distributions))
        return self

    @property
    def total_events(self) -> int:
        return sum(count for count, _op, _dists in self.groups)

    def __repr__(self) -> str:
        return f"<StochasticProcess {self.name}: {self.total_events} events>"


class Scenario:
    """A composition of stochastic processes over (virtual or real) time."""

    def __init__(self) -> None:
        self._rules: list[tuple[str, float, Optional[StochasticProcess], Optional[StochasticProcess]]] = []
        self._processes: list[StochasticProcess] = []

    # -------------------------------------------------------- composition DSL

    def _register(self, process: Optional[StochasticProcess]) -> None:
        if process is not None and process not in self._processes:
            if process.inter_arrival is None or not process.groups:
                raise ConfigurationError(
                    f"process {process.name!r} needs an inter-arrival time and "
                    f"at least one raise_events group"
                )
            self._processes.append(process)

    def start(self, process: StochasticProcess, after: float = 0.0) -> "Scenario":
        """Start ``process`` at scenario time ``after``."""
        self._register(process)
        self._rules.append(("start_at", after, None, process))
        return self

    def start_after_start_of(
        self, delay: float, predecessor: StochasticProcess, process: StochasticProcess
    ) -> "Scenario":
        """Parallel composition: start ``process`` after ``predecessor`` starts."""
        self._register(predecessor)
        self._register(process)
        self._rules.append(("after_start", delay, predecessor, process))
        return self

    def start_after_termination_of(
        self, delay: float, predecessor: StochasticProcess, process: StochasticProcess
    ) -> "Scenario":
        """Sequential composition: start ``process`` after ``predecessor`` ends."""
        self._register(predecessor)
        self._register(process)
        self._rules.append(("after_termination", delay, predecessor, process))
        return self

    def terminate_after_termination_of(
        self, delay: float, process: StochasticProcess
    ) -> "Scenario":
        """Join synchronization: end the experiment after ``process`` ends."""
        self._register(process)
        self._rules.append(("terminate", delay, process, None))
        return self

    # --------------------------------------------------------------- running

    def simulate(self, simulation: Simulation, sink: Sink) -> dict[str, int]:
        """Drive a deterministic simulation from this scenario.

        Schedules the scenario onto the simulation's event queue; the caller
        then calls ``simulation.run()``.  Returns a live counter dict
        (events raised per process) that fills in as the simulation runs.
        """
        run = _ScenarioRun(
            self,
            schedule=lambda delay, fn: simulation.schedule(delay, fn),
            rng=simulation.system.random,
            sink=sink,
            terminate=simulation.stop,
        )
        run.begin()
        return run.counters

    def execute(
        self,
        system,
        sink: Sink,
        time_scale: float = 1.0,
    ) -> tuple[dict[str, int], threading.Event]:
        """Drive a real-time system from the same scenario (paper Fig 12 right).

        ``time_scale`` < 1 compresses delays (0.1 = 10x faster than spec).
        Returns the live counters and an Event set when the scenario's
        terminate rule fires.
        """
        from ..timer.wheel import TimerWheel

        if "timer_wheel" not in system.services:
            system.register_service("timer_wheel", TimerWheel(system.clock))
        wheel: TimerWheel = system.services["timer_wheel"]
        done = threading.Event()
        run = _ScenarioRun(
            self,
            schedule=lambda delay, fn: wheel.schedule(delay * time_scale, fn),
            rng=system.random,
            sink=sink,
            terminate=done.set,
        )
        run.begin()
        return run.counters, done


class _ScenarioRun:
    """One execution of a scenario over an abstract timebase."""

    def __init__(
        self,
        scenario: Scenario,
        schedule: Callable[[float, Callable[[], None]], object],
        rng: random.Random,
        sink: Sink,
        terminate: Callable[[], None],
    ) -> None:
        self.scenario = scenario
        self.schedule = schedule
        self.rng = rng
        self.sink = sink
        self.terminate = terminate
        self.counters: dict[str, int] = {p.name: 0 for p in scenario._processes}
        self._started: set[str] = set()
        self._terminated: set[str] = set()

    def begin(self) -> None:
        for kind, delay, _pred, process in self.scenario._rules:
            if kind == "start_at":
                assert process is not None
                self.schedule(delay, lambda p=process: self._start_process(p))

    def _start_process(self, process: StochasticProcess) -> None:
        if process.name in self._started:
            return
        self._started.add(process.name)
        for kind, delay, pred, dependent in self.scenario._rules:
            if kind == "after_start" and pred is process:
                assert dependent is not None
                self.schedule(delay, lambda p=dependent: self._start_process(p))
        _ProcessRun(process, self).schedule_next()

    def _process_terminated(self, process: StochasticProcess) -> None:
        if process.name in self._terminated:
            return
        self._terminated.add(process.name)
        for kind, delay, pred, dependent in self.scenario._rules:
            if kind == "after_termination" and pred is process:
                assert dependent is not None
                self.schedule(delay, lambda p=dependent: self._start_process(p))
            elif kind == "terminate" and pred is process:
                self.schedule(delay, self.terminate)


class _ProcessRun:
    """Executes one stochastic process: samples delays, fires operations."""

    def __init__(self, process: StochasticProcess, run: _ScenarioRun) -> None:
        self.process = process
        self.run = run
        self.remaining = [
            [count, operation, distributions]
            for count, operation, distributions in process.groups
        ]

    def schedule_next(self) -> None:
        if all(group[0] == 0 for group in self.remaining):
            self.run._process_terminated(self.process)
            return
        assert self.process.inter_arrival is not None
        delay = self.process.inter_arrival.sample(self.run.rng)
        self.run.schedule(delay, self.fire)

    def fire(self) -> None:
        # Pick a raise_events group weighted by remaining counts: groups of
        # one process are randomly interleaved (paper's churn process).
        total = sum(group[0] for group in self.remaining)
        pick = self.run.rng.randrange(total)
        for group in self.remaining:
            if pick < group[0]:
                break
            pick -= group[0]
        group[0] -= 1
        _count, operation, distributions = group
        arguments = [d.sample(self.run.rng) for d in distributions]
        command = operation(*arguments)
        if command is not None:
            self.run.sink(command)
        self.run.counters[self.process.name] += 1
        self.schedule_next()
