"""Latency models for the network emulator."""

from __future__ import annotations

import abc
import random
from ..network.address import Address


class LatencyModel(abc.ABC):
    """One-way message latency between two addresses, in seconds."""

    @abc.abstractmethod
    def sample(self, rng: random.Random, source: Address, destination: Address) -> float: ...


class ConstantLatency(LatencyModel):
    def __init__(self, latency: float = 0.001) -> None:
        self.latency = latency

    def sample(self, rng, source, destination) -> float:
        return self.latency


class UniformLatency(LatencyModel):
    def __init__(self, low: float = 0.0005, high: float = 0.005) -> None:
        if low > high:
            raise ValueError("low must not exceed high")
        self.low = low
        self.high = high

    def sample(self, rng, source, destination) -> float:
        return rng.uniform(self.low, self.high)


class NormalLatency(LatencyModel):
    """Gaussian latency, truncated at ``minimum``."""

    def __init__(self, mean: float = 0.002, stddev: float = 0.0005, minimum: float = 1e-6):
        self.mean = mean
        self.stddev = stddev
        self.minimum = minimum

    def sample(self, rng, source, destination) -> float:
        return max(self.minimum, rng.gauss(self.mean, self.stddev))


class PairwiseLatency(LatencyModel):
    """Per-(source, destination) base latency with optional jitter.

    A laptop-scale stand-in for trace-driven matrices like the King data
    set: deterministic pairwise base latencies derived from node ids, plus
    uniform jitter.
    """

    def __init__(
        self,
        base_low: float = 0.0005,
        base_high: float = 0.01,
        jitter: float = 0.0002,
        seed: int = 0,
    ) -> None:
        self.base_low = base_low
        self.base_high = base_high
        self.jitter = jitter
        self.seed = seed
        self._cache: dict[tuple[Address, Address], float] = {}

    def _base(self, source: Address, destination: Address) -> float:
        key = (source, destination)
        base = self._cache.get(key)
        if base is None:
            pair_rng = random.Random((hash(key) ^ self.seed) & 0xFFFFFFFF)
            base = pair_rng.uniform(self.base_low, self.base_high)
            self._cache[key] = base
        return base

    def sample(self, rng, source, destination) -> float:
        return self._base(source, destination) + rng.uniform(0, self.jitter)
