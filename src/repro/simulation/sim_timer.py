"""SimTimer: the Timer abstraction under virtual time.

Drop-in replacement for :class:`~repro.timer.thread_timer.ThreadTimer` in
simulation mode — same port, same events, but expiries come from the
simulation's discrete-event queue, so the same component code runs
unchanged under virtual time (the paper's core decoupling claim).

Periodic timers are the simulator's hottest schedule source (failure
detectors, shuffles, stabilization), so each period re-arms through
``queue.reschedule`` with a reusable callable — no fresh closure or entry
allocation per tick on the wheel engine.
"""

from __future__ import annotations

from ..core.component import ComponentDefinition
from ..core.handler import handles
from ..timer.port import (
    CancelPeriodicTimeout,
    CancelTimeout,
    ScheduleTimeout,
    SchedulePeriodicTimeout,
    Timeout,
    Timer,
)
from .core import queue_of
from .event_queue import ScheduledEntry


class _PeriodicFire:
    """The queue action of one periodic timeout, reused across periods."""

    __slots__ = ("timer", "timeout", "period", "entry")

    def __init__(self, timer: "SimTimer", timeout: Timeout, period: float) -> None:
        self.timer = timer
        self.timeout = timeout
        self.period = period
        self.entry: ScheduledEntry | None = None

    def __call__(self) -> None:
        timer = self.timer
        timeout_id = self.timeout.timeout_id
        if timer._pending.get(timeout_id) is not self.entry:
            return  # cancelled (or superseded by a reused id)
        timer.trigger(self.timeout, timer.port)
        self.entry = timer._queue.reschedule(
            self.entry, timer.system.clock.now() + self.period
        )
        timer._pending[timeout_id] = self.entry


# Pending entries reference the simulation's event queue directly; the
# timer is part of a shard's per-process service plumbing (like the
# queue it wraps), never a migration candidate, so no handover hooks.
class SimTimer(ComponentDefinition):  # repro: noqa[P006]
    """Timer service backed by the simulation event queue."""

    def __init__(self) -> None:
        super().__init__()
        self.port = self.provides(Timer)
        self._queue = queue_of(self.system)
        self._pending: dict[int, ScheduledEntry] = {}
        self.subscribe(self.on_schedule, self.port)
        self.subscribe(self.on_schedule_periodic, self.port)
        self.subscribe(self.on_cancel, self.port)
        self.subscribe(self.on_cancel_periodic, self.port)

    def _fire_once(self, timeout: Timeout) -> None:
        self._pending.pop(timeout.timeout_id, None)
        self.trigger(timeout, self.port)

    @handles(ScheduleTimeout)
    def on_schedule(self, request: ScheduleTimeout) -> None:
        entry = self._queue.schedule(
            self.system.clock.now() + request.delay,
            lambda: self._fire_once(request.timeout),
        )
        self._pending[request.timeout.timeout_id] = entry

    @handles(SchedulePeriodicTimeout)
    def on_schedule_periodic(self, request: SchedulePeriodicTimeout) -> None:
        fire = _PeriodicFire(self, request.timeout, request.period)
        entry = self._queue.schedule(self.system.clock.now() + request.delay, fire)
        fire.entry = entry
        self._pending[request.timeout.timeout_id] = entry

    @handles(CancelTimeout)
    def on_cancel(self, request: CancelTimeout) -> None:
        entry = self._pending.pop(request.timeout_id, None)
        if entry is not None:
            entry.cancel()

    @handles(CancelPeriodicTimeout)
    def on_cancel_periodic(self, request: CancelPeriodicTimeout) -> None:
        entry = self._pending.pop(request.timeout_id, None)
        if entry is not None:
            entry.cancel()
