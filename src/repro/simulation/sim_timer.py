"""SimTimer: the Timer abstraction under virtual time.

Drop-in replacement for :class:`~repro.timer.thread_timer.ThreadTimer` in
simulation mode — same port, same events, but expiries come from the
simulation's discrete-event queue, so the same component code runs
unchanged under virtual time (the paper's core decoupling claim).
"""

from __future__ import annotations

from ..core.component import ComponentDefinition
from ..core.handler import handles
from ..timer.port import (
    CancelPeriodicTimeout,
    CancelTimeout,
    ScheduleTimeout,
    SchedulePeriodicTimeout,
    Timeout,
    Timer,
)
from .core import queue_of
from .event_queue import ScheduledEntry


class SimTimer(ComponentDefinition):
    """Timer service backed by the simulation event queue."""

    def __init__(self) -> None:
        super().__init__()
        self.port = self.provides(Timer)
        self._queue = queue_of(self.system)
        self._pending: dict[int, ScheduledEntry] = {}
        self.subscribe(self.on_schedule, self.port)
        self.subscribe(self.on_schedule_periodic, self.port)
        self.subscribe(self.on_cancel, self.port)
        self.subscribe(self.on_cancel_periodic, self.port)

    def _fire_once(self, timeout: Timeout) -> None:
        self._pending.pop(timeout.timeout_id, None)
        self.trigger(timeout, self.port)

    def _fire_periodic(self, timeout: Timeout, period: float) -> None:
        if timeout.timeout_id not in self._pending:
            return  # cancelled
        self.trigger(timeout, self.port)
        self._pending[timeout.timeout_id] = self._queue.schedule(
            self.system.clock.now() + period,
            lambda: self._fire_periodic(timeout, period),
        )

    @handles(ScheduleTimeout)
    def on_schedule(self, request: ScheduleTimeout) -> None:
        entry = self._queue.schedule(
            self.system.clock.now() + request.delay,
            lambda: self._fire_once(request.timeout),
        )
        self._pending[request.timeout.timeout_id] = entry

    @handles(SchedulePeriodicTimeout)
    def on_schedule_periodic(self, request: SchedulePeriodicTimeout) -> None:
        entry = self._queue.schedule(
            self.system.clock.now() + request.delay,
            lambda: self._fire_periodic(request.timeout, request.period),
        )
        self._pending[request.timeout.timeout_id] = entry

    @handles(CancelTimeout)
    def on_cancel(self, request: CancelTimeout) -> None:
        entry = self._pending.pop(request.timeout_id, None)
        if entry is not None:
            entry.cancel()

    @handles(CancelPeriodicTimeout)
    def on_cancel_periodic(self, request: CancelPeriodicTimeout) -> None:
        entry = self._pending.pop(request.timeout_id, None)
        if entry is not None:
            entry.cancel()
