"""The network emulator (paper Fig 12: NetworkEmulator).

Simulation-mode replacement for the real network: the same Network port,
but deliveries are scheduled on the virtual-time event queue through a
configurable latency model, with optional message loss and network
partitions — the "partially synchronous, lossy, partitionable" environment
CATS is designed for.

Architecture: a shared per-simulation :class:`EmulatorCore` service routes
by destination address; each simulated node embeds its own
:class:`EmulatedNetwork` adapter component providing the Network port.
Keeping routing in the service (not event broadcast) keeps delivery O(1)
per message regardless of node count, which matters for Table 1.
"""

from __future__ import annotations

import random
from functools import partial
from typing import Optional

from ..core.component import ComponentDefinition
from ..core.errors import SimulationError
from ..core.handler import handles
from ..network.address import Address
from ..network.message import Message, Network
from .core import QUEUE_SERVICE, Simulation
from .event_queue import EventQueue
from .latency import ConstantLatency, LatencyModel

EMULATOR_SERVICE = "network_emulator"


class EmulatorCore:
    """Shared routing, latency, loss and partition state (a system service)."""

    def __init__(
        self,
        queue: EventQueue,
        clock,
        rng: random.Random,
        latency: Optional[LatencyModel] = None,
        loss_rate: float = 0.0,
    ) -> None:
        self.queue = queue
        self.clock = clock
        self.rng = rng
        self.latency = latency if latency is not None else ConstantLatency()
        self.loss_rate = loss_rate
        self._adapters: dict[Address, "EmulatedNetwork"] = {}
        self._partitions: list[tuple[frozenset[Address], frozenset[Address]]] = []
        self._one_way: list[tuple[frozenset[Address], frozenset[Address]]] = []
        self.sent = 0
        self.delivered = 0
        self.dropped = 0
        self.lost = 0

    # -------------------------------------------------------------- adapters

    def register(self, address: Address, adapter: "EmulatedNetwork") -> None:
        self._adapters[address] = adapter

    def unregister(self, address: Address) -> None:
        self._adapters.pop(address, None)

    # ------------------------------------------------------------- partitions

    def partition(self, side_a, side_b) -> None:
        """Cut bidirectional connectivity between two address groups."""
        self._partitions.append((frozenset(side_a), frozenset(side_b)))

    def partition_one_way(self, sources, destinations) -> None:
        """Cut only ``sources -> destinations`` traffic (asymmetric link)."""
        self._one_way.append((frozenset(sources), frozenset(destinations)))

    def heal(self) -> None:
        """Remove all partitions (bidirectional and one-way)."""
        self._partitions.clear()
        self._one_way.clear()

    def _partitioned(self, source: Address, destination: Address) -> bool:
        for side_a, side_b in self._partitions:
            if (source in side_a and destination in side_b) or (
                source in side_b and destination in side_a
            ):
                return True
        for sources, destinations in self._one_way:
            if source in sources and destination in destinations:
                return True
        return False

    # ---------------------------------------------------------------- routing

    def route(self, message: Message) -> None:
        self.sent += 1
        if (self._partitions or self._one_way) and self._partitioned(
            message.source, message.destination
        ):
            self.dropped += 1
            return
        if self.loss_rate > 0 and self.rng.random() < self.loss_rate:
            self.lost += 1
            return
        delay = self.latency.sample(self.rng, message.source, message.destination)
        # partial beats a lambda closure here: cheaper to build and to call,
        # and this is the single busiest schedule() site in simulation.
        self.queue.schedule(
            self.clock.now() + delay, partial(self._deliver, message)
        )

    def _deliver(self, message: Message) -> None:
        adapter = self._adapters.get(message.destination)
        if adapter is None:
            # Destination died while the message was in flight.
            self.dropped += 1
            return
        self.delivered += 1
        adapter.deliver(message)


def emulator_of(system) -> EmulatorCore:
    """Fetch or lazily create the system's emulator core (simulation only)."""
    if EMULATOR_SERVICE not in system.services:
        queue = system.services.get(QUEUE_SERVICE)
        if queue is None:
            raise SimulationError(
                "EmulatedNetwork requires a simulation-mode system"
            )
        system.register_service(
            EMULATOR_SERVICE,
            EmulatorCore(queue, system.clock, system.random),
        )
    return system.services[EMULATOR_SERVICE]


class EmulatedNetwork(ComponentDefinition):
    """Provides Network for one simulated node."""

    def __init__(self, address: Address) -> None:
        super().__init__()
        self.address = address
        self.port = self.provides(Network)
        self._emulator = emulator_of(self.system)
        self._emulator.register(address, self)
        self.subscribe(self.on_send, self.port)

    @handles(Message)
    def on_send(self, message: Message) -> None:
        self._emulator.route(message)

    def deliver(self, message: Message) -> None:
        self.trigger(message, self.port)

    def tear_down(self) -> None:
        self._emulator.unregister(self.address)
