"""Hot-path profiling for the deterministic simulator.

``Simulation.profile()`` answers "where do simulated seconds go?" without
an external profiler: it hooks the component execution observer seam (the
same one race tracking uses) and attributes wall time per component
*definition* and per *event type*, plus the share spent inside the timed
dispatch machinery itself.  Zero cost when not installed — the observer
global is None on the default path.

Usage::

    sim = Simulation(seed=7)
    ...
    with sim.profile() as prof:
        sim.run(until=30.0)
    print(prof.report(top=10))
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING

from ..core import component as _component_mod

if TYPE_CHECKING:  # pragma: no cover
    from .core import Simulation


class SimulationProfiler:
    """Collects per-definition / per-event-type execution time.

    Installs itself as the component execution observer on construction;
    ``uninstall()`` (or leaving the ``with`` block) detaches it.  Mutually
    exclusive with race tracking, which owns the same seam.
    """

    def __init__(self, simulation: "Simulation") -> None:
        if _component_mod._race_observer is not None:
            raise RuntimeError(
                "the component execution observer is already installed "
                "(race tracking and profiling are mutually exclusive)"
            )
        self.simulation = simulation
        self.by_definition: dict[str, list] = {}  # name -> [seconds, count]
        self.by_event_type: dict[str, list] = {}
        self._t0 = 0.0
        self._wall_start = perf_counter()
        self._wall = 0.0
        self._events_start = simulation.events_dispatched
        self._installed = True
        _component_mod._race_observer = self

    # ---------------------------------------------------- observer protocol

    def begin(self, core, item) -> None:
        self._t0 = perf_counter()

    def end(self, core, item) -> None:
        elapsed = perf_counter() - self._t0
        definition_name = type(core.definition).__name__
        cell = self.by_definition.get(definition_name)
        if cell is None:
            cell = self.by_definition[definition_name] = [0.0, 0]
        cell[0] += elapsed
        cell[1] += 1
        event_name = type(item.event).__name__
        cell = self.by_event_type.get(event_name)
        if cell is None:
            cell = self.by_event_type[event_name] = [0.0, 0]
        cell[0] += elapsed
        cell[1] += 1

    # -------------------------------------------------------------- control

    def uninstall(self) -> None:
        if self._installed:
            self._installed = False
            self._wall = perf_counter() - self._wall_start
            _component_mod._race_observer = None

    def __enter__(self) -> "SimulationProfiler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.uninstall()

    # ------------------------------------------------------------- reporting

    @property
    def wall_seconds(self) -> float:
        return self._wall if not self._installed else perf_counter() - self._wall_start

    @property
    def handler_seconds(self) -> float:
        return sum(cell[0] for cell in self.by_definition.values())

    def top_definitions(self, top: int = 10) -> list[tuple[str, float, int]]:
        return self._top(self.by_definition, top)

    def top_event_types(self, top: int = 10) -> list[tuple[str, float, int]]:
        return self._top(self.by_event_type, top)

    @staticmethod
    def _top(table: dict[str, list], top: int) -> list[tuple[str, float, int]]:
        ranked = sorted(table.items(), key=lambda kv: kv[1][0], reverse=True)
        return [(name, cell[0], cell[1]) for name, cell in ranked[:top]]

    def report(self, top: int = 10) -> str:
        """A top-k breakdown: handler time per definition and event type.

        The residual (wall minus handler time) is the simulation driver
        itself — queue operations, clock advances, scheduler bookkeeping —
        which is exactly what the wheel/batching engine targets.
        """
        wall = self.wall_seconds
        handlers = self.handler_seconds
        events = self.simulation.events_dispatched - self._events_start
        lines = [
            f"simulation profile: {wall:.3f}s wall, "
            f"{handlers:.3f}s in handlers ({_share(handlers, wall)}), "
            f"{events} timed events, engine={self.simulation.queue_engine}",
            "",
            f"  {'component definition':<32} {'seconds':>9} {'share':>7} {'execs':>9}",
        ]
        for name, seconds, count in self.top_definitions(top):
            lines.append(
                f"  {name:<32} {seconds:>9.3f} {_share(seconds, wall):>7} {count:>9}"
            )
        lines.append("")
        lines.append(f"  {'event type':<32} {'seconds':>9} {'share':>7} {'execs':>9}")
        for name, seconds, count in self.top_event_types(top):
            lines.append(
                f"  {name:<32} {seconds:>9.3f} {_share(seconds, wall):>7} {count:>9}"
            )
        lines.append("")
        lines.append(
            f"  {'driver residual (queue/clock/scheduler)':<32} "
            f"{max(0.0, wall - handlers):>9.3f} {_share(max(0.0, wall - handlers), wall):>7}"
        )
        return "\n".join(lines)


def _share(part: float, whole: float) -> str:
    return f"{100.0 * part / whole:.1f}%" if whole > 0 else "-"
