"""The discrete-event queue driving simulated time.

Everything time-dependent in simulation mode — timer expiries, message
deliveries, scenario operations — is an entry in this queue.  Entries at
equal timestamps fire in insertion order, which (together with the FIFO
component scheduler and the seeded RNG) makes whole-system simulation fully
deterministic and reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional


class ScheduledEntry:
    """One future action in virtual time."""

    __slots__ = ("time", "sequence", "action", "cancelled")

    def __init__(self, time: float, sequence: int, action: Callable[[], None]) -> None:
        self.time = time
        self.sequence = sequence
        self.action = action
        self.cancelled = False

    def __lt__(self, other: "ScheduledEntry") -> bool:
        return (self.time, self.sequence) < (other.time, other.sequence)

    def cancel(self) -> None:
        self.cancelled = True


class EventQueue:
    """A deterministic min-heap of timed actions."""

    def __init__(self) -> None:
        self._heap: list[ScheduledEntry] = []
        self._sequence = itertools.count()
        self.scheduled_total = 0
        self.fired_total = 0

    def schedule(self, at: float, action: Callable[[], None]) -> ScheduledEntry:
        """Schedule ``action`` at absolute virtual time ``at``."""
        entry = ScheduledEntry(at, next(self._sequence), action)
        heapq.heappush(self._heap, entry)
        self.scheduled_total += 1
        return entry

    def pop_due(self) -> Optional[ScheduledEntry]:
        """Pop the earliest non-cancelled entry, or None if empty."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if not entry.cancelled:
                self.fired_total += 1
                return entry
        return None

    def peek_time(self) -> Optional[float]:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return sum(1 for entry in self._heap if not entry.cancelled)

    def __bool__(self) -> bool:
        return self.peek_time() is not None
