"""The discrete-event queue driving simulated time.

Everything time-dependent in simulation mode — timer expiries, message
deliveries, scenario operations — is an entry in this queue.  Entries at
equal timestamps fire in insertion order, which (together with the FIFO
component scheduler and the seeded RNG) makes whole-system simulation fully
deterministic and reproducible.

Two opt-in hooks support the concurrency analysis in
:mod:`repro.analysis.race` (both None/unset by default, costing one
is-None test):

- the module-level ``_race_stamp_entry`` hook attaches the scheduling
  execution's vector clock to each new entry (the schedule→fire
  happens-before edge);
- the per-queue ``picker`` attribute lets a schedule explorer choose
  *which* of several same-timestamp entries fires next — insertion order
  among equal timestamps is an artifact of the implementation, and
  permuting it is exactly how order-dependent bugs are surfaced.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional, Sequence

#: Entry-stamping hook, installed by :mod:`repro.analysis.race` while race
#: tracking is active and None otherwise.  Called as ``hook(entry)`` right
#: after an entry is scheduled.
_race_stamp_entry = None


class ScheduledEntry:
    """One future action in virtual time."""

    __slots__ = ("time", "sequence", "action", "cancelled", "stamp")

    def __init__(self, time: float, sequence: int, action: Callable[[], None]) -> None:
        self.time = time
        self.sequence = sequence
        self.action = action
        self.cancelled = False
        #: vector-clock stamp of the scheduling execution (race analysis
        #: only; None on the default path).
        self.stamp = None

    def __lt__(self, other: "ScheduledEntry") -> bool:
        return (self.time, self.sequence) < (other.time, other.sequence)

    def cancel(self) -> None:
        self.cancelled = True


class EventQueue:
    """A deterministic min-heap of timed actions."""

    def __init__(self) -> None:
        self._heap: list[ScheduledEntry] = []
        self._sequence = itertools.count()
        self.scheduled_total = 0
        self.fired_total = 0
        #: Optional same-timestamp chooser (schedule exploration): called
        #: with the list of non-cancelled entries sharing the earliest
        #: timestamp, returns the index of the entry to fire.  None (the
        #: default) keeps strict insertion order.
        self.picker: Optional[Callable[[Sequence[ScheduledEntry]], int]] = None

    def schedule(self, at: float, action: Callable[[], None]) -> ScheduledEntry:
        """Schedule ``action`` at absolute virtual time ``at``."""
        entry = ScheduledEntry(at, next(self._sequence), action)
        stamp = _race_stamp_entry
        if stamp is not None:
            stamp(entry)
        heapq.heappush(self._heap, entry)
        self.scheduled_total += 1
        return entry

    def pop_due(self) -> Optional[ScheduledEntry]:
        """Pop the earliest non-cancelled entry, or None if empty.

        With a ``picker`` installed, all non-cancelled entries at the
        earliest timestamp are candidates and the picker selects which one
        fires; the rest are pushed back unchanged.
        """
        if self.picker is None:
            while self._heap:
                entry = heapq.heappop(self._heap)
                if not entry.cancelled:
                    self.fired_total += 1
                    return entry
            return None
        while self._heap:
            earliest = self._heap[0].time
            due: list[ScheduledEntry] = []
            while self._heap and self._heap[0].time == earliest:
                entry = heapq.heappop(self._heap)
                if not entry.cancelled:
                    due.append(entry)
            if not due:
                continue  # every entry at this timestamp was cancelled
            chosen = due.pop(self.picker(due) if len(due) > 1 else 0)
            for entry in due:
                heapq.heappush(self._heap, entry)
            self.fired_total += 1
            return chosen
        return None

    def peek_time(self) -> Optional[float]:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return sum(1 for entry in self._heap if not entry.cancelled)

    def __bool__(self) -> bool:
        return self.peek_time() is not None
