"""The discrete-event queue driving simulated time.

Everything time-dependent in simulation mode — timer expiries, message
deliveries, scenario operations — is an entry in this queue.  Entries at
equal timestamps fire in insertion order, which (together with the FIFO
component scheduler and the seeded RNG) makes whole-system simulation fully
deterministic and reproducible.

Two engines implement the same contract:

- :class:`EventQueue` (the default): same-timestamp entries share one FIFO
  *bucket*, buckets are indexed by a hierarchical
  :class:`~repro.simulation.wheel.TimerWheel`, cancellation unlinks in
  O(1), ``__len__``/``__bool__`` read a live-entry counter, and
  ``pop_batch`` hands the whole earliest bucket to the run loop in one
  operation;
- :class:`HeapEventQueue`: the original binary-heap implementation, kept
  verbatim as the determinism oracle (``REPRO_SIM_QUEUE=heap``) — the
  differential tests assert byte-identical ``Tracer.fingerprint()`` between
  the two.

Two opt-in hooks support the concurrency analysis in
:mod:`repro.analysis.race` (both None/unset by default, costing one
is-None test):

- the module-level ``_race_stamp_entry`` hook attaches the scheduling
  execution's vector clock to each new entry (the schedule→fire
  happens-before edge);
- the per-queue ``picker`` attribute lets a schedule explorer choose
  *which* of several same-timestamp entries fires next — insertion order
  among equal timestamps is an artifact of the implementation, and
  permuting it is exactly how order-dependent bugs are surfaced.
"""

from __future__ import annotations

import heapq
import itertools
import os
from typing import Callable, Optional, Sequence

from .wheel import TimerWheel

#: Entry-stamping hook, installed by :mod:`repro.analysis.race` while race
#: tracking is active and None otherwise.  Called as ``hook(entry)`` right
#: after an entry is scheduled.
_race_stamp_entry = None


class ScheduledEntry:
    """One future action in virtual time."""

    __slots__ = ("time", "sequence", "action", "cancelled", "stamp", "bucket")

    def __init__(self, time: float, sequence: int, action: Callable[[], None]) -> None:
        self.time = time
        self.sequence = sequence
        self.action = action
        self.cancelled = False
        #: vector-clock stamp of the scheduling execution (race analysis
        #: only; None on the default path).
        self.stamp = None
        #: owning same-timestamp bucket while queued in an
        #: :class:`EventQueue`; None once popped, or under the heap engine.
        self.bucket = None

    def __lt__(self, other: "ScheduledEntry") -> bool:
        return (self.time, self.sequence) < (other.time, other.sequence)

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        bucket = self.bucket
        if bucket is not None:
            bucket.queue._entry_cancelled(bucket)


class _TimeBucket:
    """All entries scheduled at one exact timestamp, in insertion order.

    ``head`` is the index of the first un-popped entry (single pops consume
    from the front without shifting the list); ``live`` counts entries that
    are neither popped nor cancelled.  ``loc`` is written by the wheel.
    """

    __slots__ = ("time", "entries", "head", "live", "queue", "loc")

    def __init__(self, time: float, queue: "EventQueue") -> None:
        self.time = time
        self.entries: list[ScheduledEntry] = []
        self.head = 0
        self.live = 0
        self.queue = queue
        self.loc = 0


class EventQueue:
    """Deterministic timed-action queue: wheel-indexed FIFO time buckets."""

    def __init__(self) -> None:
        self._wheel = TimerWheel()
        self._buckets: dict[float, _TimeBucket] = {}
        self._sequence = itertools.count()
        self._live = 0
        self.scheduled_total = 0
        self.fired_total = 0
        #: Optional same-timestamp chooser (schedule exploration): called
        #: with the list of non-cancelled entries sharing the earliest
        #: timestamp, returns the index of the entry to fire.  None (the
        #: default) keeps strict insertion order.
        self.picker: Optional[Callable[[Sequence[ScheduledEntry]], int]] = None

    # ------------------------------------------------------------- scheduling

    def schedule(self, at: float, action: Callable[[], None]) -> ScheduledEntry:
        """Schedule ``action`` at absolute virtual time ``at``."""
        entry = ScheduledEntry(at, next(self._sequence), action)
        stamp = _race_stamp_entry
        if stamp is not None:
            stamp(entry)
        # _append, inlined: this is the busiest write path in simulation.
        bucket = self._buckets.get(at)
        if bucket is None:
            bucket = _TimeBucket(at, self)
            self._buckets[at] = bucket
            self._wheel.insert(at, bucket)
        bucket.entries.append(entry)
        bucket.live += 1
        entry.bucket = bucket
        self._live += 1
        self.scheduled_total += 1
        return entry

    def reschedule(self, entry: ScheduledEntry, at: float) -> ScheduledEntry:
        """Re-arm a fired entry at a new time, reusing the object.

        Allocation-free re-arm for periodic timers: the entry gets a fresh
        sequence number (insertion order among equal timestamps is global)
        and is stamped again, exactly as a newly scheduled entry would be —
        each period is a distinct schedule→fire happens-before edge.
        """
        if entry.bucket is not None:
            raise ValueError("cannot reschedule an entry that is still queued")
        entry.time = at
        entry.sequence = next(self._sequence)
        entry.cancelled = False
        entry.stamp = None
        stamp = _race_stamp_entry
        if stamp is not None:
            stamp(entry)
        self._append(entry)
        return entry

    def _append(self, entry: ScheduledEntry) -> None:
        at = entry.time
        bucket = self._buckets.get(at)
        if bucket is None:
            bucket = _TimeBucket(at, self)
            self._buckets[at] = bucket
            self._wheel.insert(at, bucket)
        bucket.entries.append(entry)
        bucket.live += 1
        entry.bucket = bucket
        self._live += 1
        self.scheduled_total += 1

    # ----------------------------------------------------------- cancellation

    def _entry_cancelled(self, bucket: _TimeBucket) -> None:
        bucket.live -= 1
        self._live -= 1
        if bucket.live == 0:
            # Last live entry gone: unlink the whole bucket now.  Cancelled
            # debris (and the component state its actions close over) is
            # released immediately instead of surviving to its deadline.
            del self._buckets[bucket.time]
            self._wheel.remove(bucket.time, bucket)
            for entry in bucket.entries:
                entry.bucket = None
            bucket.entries = []
        elif bucket.live * 2 < len(bucket.entries) - bucket.head:
            # Compact once tombstones outnumber live entries in the bucket.
            survivors = []
            for entry in bucket.entries[bucket.head:]:
                if entry.cancelled:
                    entry.bucket = None
                else:
                    survivors.append(entry)
            bucket.entries = survivors
            bucket.head = 0

    # ---------------------------------------------------------------- popping

    def pop_batch(self, until: Optional[float] = None):
        """Pop every live entry at the earliest timestamp, in FIFO order.

        Returns ``(time, entries)``, or None if the queue is empty, or
        ``(time, None)`` — *without popping* — when ``until`` is given and
        the earliest timestamp lies beyond it.  The entries are detached: a
        cancellation between pop and dispatch only flips ``entry.cancelled``
        (the run loop re-checks it per entry, preserving the heap engine's
        pop-time semantics).
        """
        popped = self._wheel.pop(until)
        if popped is None:
            return None
        time, bucket = popped
        if bucket is None:
            return time, None
        del self._buckets[time]
        entries = bucket.entries
        head = bucket.head
        if bucket.live == len(entries) - head:
            batch = entries[head:] if head else entries
        else:
            batch = [e for e in entries[head:] if not e.cancelled]
        self._live -= bucket.live
        for entry in entries:
            entry.bucket = None
        bucket.entries = []
        return time, batch

    def pop_due(self) -> Optional[ScheduledEntry]:
        """Pop the earliest non-cancelled entry, or None if empty.

        With a ``picker`` installed, all non-cancelled entries at the
        earliest timestamp are candidates and the picker selects which one
        fires; the rest stay queued unchanged.
        """
        time = self._wheel.peek()
        if time is None:
            return None
        bucket = self._buckets[time]
        entries = bucket.entries
        if self.picker is None:
            index = bucket.head
            while entries[index].cancelled:  # live >= 1 by bucket invariant
                index += 1
            entry = entries[index]
            bucket.head = index + 1
        else:
            due = [e for e in entries[bucket.head:] if not e.cancelled]
            entry = due[self.picker(due) if len(due) > 1 else 0]
            entries.remove(entry)
        bucket.live -= 1
        self._live -= 1
        entry.bucket = None
        if bucket.live == 0:
            del self._buckets[time]
            self._wheel.remove(time, bucket)
            for leftover in bucket.entries:
                leftover.bucket = None
            bucket.entries = []
        self.fired_total += 1
        return entry

    # ------------------------------------------------------------- inspection

    def peek_time(self) -> Optional[float]:
        return self._wheel.peek()

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def stats(self) -> dict:
        """Internal sizes, for tests pinning boundedness under churn."""
        stats = self._wheel.stats()
        stats["live"] = self._live
        stats["buckets"] = len(self._buckets)
        return stats


class HeapEventQueue:
    """The original deterministic min-heap of timed actions.

    Kept verbatim as the reference oracle for the wheel engine
    (``REPRO_SIM_QUEUE=heap``): cancelled entries tombstone until their
    deadline, ``__len__`` scans, and pops pay Python-level comparisons.
    """

    def __init__(self) -> None:
        self._heap: list[ScheduledEntry] = []
        self._sequence = itertools.count()
        self.scheduled_total = 0
        self.fired_total = 0
        #: Same-timestamp chooser; see :attr:`EventQueue.picker`.
        self.picker: Optional[Callable[[Sequence[ScheduledEntry]], int]] = None

    def schedule(self, at: float, action: Callable[[], None]) -> ScheduledEntry:
        """Schedule ``action`` at absolute virtual time ``at``."""
        entry = ScheduledEntry(at, next(self._sequence), action)
        stamp = _race_stamp_entry
        if stamp is not None:
            stamp(entry)
        heapq.heappush(self._heap, entry)
        self.scheduled_total += 1
        return entry

    def reschedule(self, entry: ScheduledEntry, at: float) -> ScheduledEntry:
        """Re-arm semantics of :meth:`EventQueue.reschedule` on the heap
        engine: allocates a fresh entry (the heap cannot reuse objects)."""
        return self.schedule(at, entry.action)

    def pop_due(self) -> Optional[ScheduledEntry]:
        """Pop the earliest non-cancelled entry, or None if empty.

        With a ``picker`` installed, all non-cancelled entries at the
        earliest timestamp are candidates and the picker selects which one
        fires; the rest are pushed back unchanged.
        """
        if self.picker is None:
            while self._heap:
                entry = heapq.heappop(self._heap)
                if not entry.cancelled:
                    self.fired_total += 1
                    return entry
            return None
        while self._heap:
            earliest = self._heap[0].time
            due: list[ScheduledEntry] = []
            while self._heap and self._heap[0].time == earliest:
                entry = heapq.heappop(self._heap)
                if not entry.cancelled:
                    due.append(entry)
            if not due:
                continue  # every entry at this timestamp was cancelled
            chosen = due.pop(self.picker(due) if len(due) > 1 else 0)
            for entry in due:
                heapq.heappush(self._heap, entry)
            self.fired_total += 1
            return chosen
        return None

    def peek_time(self) -> Optional[float]:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return sum(1 for entry in self._heap if not entry.cancelled)

    def __bool__(self) -> bool:
        return self.peek_time() is not None


def make_event_queue(engine: Optional[str] = None):
    """Build the event queue for ``engine``.

    ``engine`` is ``"wheel"`` (default), ``"heap"`` (the reference oracle)
    or None, which reads ``REPRO_SIM_QUEUE`` from the environment.
    """
    if engine is None:
        engine = os.environ.get("REPRO_SIM_QUEUE", "wheel") or "wheel"
    if engine == "wheel":
        return EventQueue()
    if engine == "heap":
        return HeapEventQueue()
    raise ValueError(f"unknown event-queue engine {engine!r} (wheel|heap)")
