"""A deterministic harness for unit-testing one component in isolation."""

from __future__ import annotations

from collections import deque
from typing import Optional

from ..core.component import Component, ComponentDefinition
from ..core.errors import ConfigurationError
from ..core.event import Event
from ..core.fault import Fault
from ..core.handler import handles
from ..core.lifecycle import Init, Start, Stop
from ..core.port import PortType
from ..simulation.core import Simulation
from ..simulation.sim_timer import SimTimer
from ..timer.port import Timer


# Test-harness scaffolding: the capture deque lives and dies with one
# in-process unit test, so shard migration never applies.
class _Probe(ComponentDefinition):  # repro: noqa[P006]
    """The counterpart of one port of the component under test."""

    def __init__(self, port_type: type[PortType], provides: bool) -> None:
        super().__init__()
        self.port = self.provides(port_type) if provides else self.requires(port_type)
        self.captured: deque[Event] = deque()
        incoming = port_type.negative if provides else port_type.positive
        # One subscription per declared incoming event type (subtypes match).
        for event_type in incoming:
            self.subscribe(self._capture, self.port, event_type=event_type)

    def _capture(self, event: Event) -> None:
        self.captured.append(event)


class PortProbe:
    """Captures events the component emits on one port; injects events into it."""

    def __init__(self, harness: "ComponentHarness", probe: Component) -> None:
        self._harness = harness
        self._probe = probe

    @property
    def captured(self) -> deque[Event]:
        return self._probe.definition.captured

    def inject(self, event: Event, settle: bool = True) -> None:
        """Send an event into the component under test through this port."""
        definition = self._probe.definition
        definition.trigger(event, definition.port)
        if settle:
            self._harness.settle()

    def expect(self, event_type: type[Event] = Event) -> Event:
        """Pop and return the next captured event of ``event_type``."""
        captured = self.captured
        for index, event in enumerate(captured):
            if isinstance(event, event_type):
                del captured[index]
                return event
        raise AssertionError(
            f"no {event_type.__name__} captured; got {list(captured)!r}"
        )

    def expect_none(self, event_type: type[Event] = Event) -> None:
        matching = [e for e in self.captured if isinstance(e, event_type)]
        if matching:
            raise AssertionError(f"unexpected events captured: {matching!r}")

    def drain(self, event_type: type[Event] = Event) -> list[Event]:
        """Remove and return all captured events of ``event_type``."""
        kept, out = deque(), []
        for event in self.captured:
            (out if isinstance(event, event_type) else kept).append(event)
        self._probe.definition.captured = kept
        return out

    def __len__(self) -> int:
        return len(self.captured)


class ComponentHarness:
    """Run one component against probes, in virtual time.

    Example::

        harness = ComponentHarness(PingFailureDetector, addr, interval=0.5)
        network = harness.probe(Network)
        fd = harness.probe(FailureDetector)
        harness.start()
        fd.inject(MonitorNode(peer))
        ping = network.expect(FdPing)
        network.inject(FdPong(peer, addr, nonce=ping.nonce))
        harness.run(for_=2.0)
        fd.expect_none(Suspect)

    Every required port of the component is served by a probe acting as its
    provider, and every provided port gets a probe requirer — except Timer,
    which by default is served by a real :class:`SimTimer` under virtual
    time (pass ``timer="probe"`` to probe it instead).
    """

    def __init__(
        self,
        definition_cls: type[ComponentDefinition],
        *args: object,
        init: Optional[Init] = None,
        timer: str = "sim",
        seed: int = 0,
        sanitize: bool = False,
        **kwargs: object,
    ) -> None:
        if timer not in ("sim", "probe"):
            raise ConfigurationError("timer must be 'sim' or 'probe'")
        self._sanitize = sanitize
        if sanitize:
            from ..analysis import sanitizer

            sanitizer.enable()
        self.simulation = Simulation(seed=seed, fault_policy="record")
        built: dict = {}

        class _Root(ComponentDefinition):
            def __init__(root) -> None:
                super().__init__()
                built["cut"] = root.create(definition_cls, *args, init=init, **kwargs)
                cut = built["cut"]
                built["probes"] = {}
                built["faults"] = []
                root.subscribe(root.on_fault, cut.control())
                for (port_type, provided), _port in tuple(cut.core.ports.items()):
                    if port_type is Timer and not provided and timer == "sim":
                        sim_timer = root.create(SimTimer)
                        root.connect(sim_timer.provided(Timer), cut.required(Timer))
                        continue
                    probe = root.create(_Probe, port_type, provides=not provided)
                    if provided:
                        root.connect(cut.provided(port_type), probe.required(port_type))
                    else:
                        root.connect(probe.provided(port_type), cut.required(port_type))
                    built["probes"][(port_type, provided)] = probe

            @handles(Fault)
            def on_fault(root, fault: Fault) -> None:
                built["faults"].append(fault)

        self.root = self.simulation.bootstrap(_Root)
        self.component: Component = built["cut"]
        self._probes: dict = built["probes"]
        self.faults: list[Fault] = built["faults"]
        self._started = False
        self.settle()

    # ---------------------------------------------------------------- access

    @property
    def definition(self) -> ComponentDefinition:
        return self.component.definition

    def probe(self, port_type: type[PortType], provided: Optional[bool] = None) -> PortProbe:
        """The probe attached to the component's port of ``port_type``.

        ``provided`` selects the side when the component both provides and
        requires the same port type.
        """
        matches = [
            (key, probe)
            for key, probe in self._probes.items()
            if key[0] is port_type and (provided is None or key[1] == provided)
        ]
        if not matches:
            raise ConfigurationError(
                f"the component has no probed {port_type.__name__} port"
            )
        if len(matches) > 1:
            raise ConfigurationError(
                f"ambiguous {port_type.__name__} port: pass provided=True/False"
            )
        return PortProbe(self, matches[0][1])

    # --------------------------------------------------------------- control

    def start(self) -> None:
        """Start the component under test (Init, if any, was sent at create)."""
        self._started = True
        self.settle()

    def stop(self) -> None:
        from ..core.dispatch import trigger

        trigger(Stop(), self.component.control())
        self.settle()

    def settle(self) -> None:
        """Execute all ready components without advancing virtual time."""
        self.simulation.scheduler.run_to_quiescence()

    def run(self, for_: float) -> None:
        """Advance virtual time, firing timers along the way."""
        self.simulation.run(until=self.simulation.now() + for_)

    def now(self) -> float:
        return self.simulation.now()

    def verify_wiring(self, allow: tuple[str, ...] = ()) -> list:
        """Run the wiring verifier (rules W*) over the harness's tree.

        Probes satisfy every port of the component under test, so a clean
        harness normally reports nothing; ``allow`` takes ``"RULE:glob"``
        entries for intentional exceptions.
        """
        from ..analysis.wiring import verify_tree

        return verify_tree(self.root, allow=allow)

    def shutdown(self) -> None:
        self.simulation.shutdown()
        if self._sanitize:
            from ..analysis import sanitizer

            sanitizer.disable()
            self._sanitize = False
