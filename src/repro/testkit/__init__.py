"""Unit-testing support for components (paper section 3, "Testing").

The paper argues Kompics supports test-driven development because a
component can be tested in isolation: feed events into its ports, observe
what it triggers.  :class:`ComponentHarness` packages that pattern —
inspired by Kompics' TestKit — on top of the deterministic manual
scheduler and virtual time.
"""

from .harness import ComponentHarness, PortProbe

__all__ = ["ComponentHarness", "PortProbe"]
