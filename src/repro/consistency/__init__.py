"""Linearizability checking for register histories (validates CATS' claim)."""

from .checker import CheckResult, check_history, check_register
from .history import History, NOT_FOUND, Operation

__all__ = [
    "CheckResult",
    "History",
    "NOT_FOUND",
    "Operation",
    "check_history",
    "check_register",
]
