"""Operation histories for consistency checking.

Records invocation/response pairs of register operations, per key, in the
form the WGL linearizability checker consumes.  Operations that never got a
response (crashed coordinator, experiment ended) stay *pending*: a pending
put may or may not have taken effect and the checker must consider both.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

NOT_FOUND = object()


@dataclass(slots=True)
class Operation:
    """One register operation with its real-time interval."""

    op_id: int
    process: object
    kind: str  # "put" | "get"
    key: int
    value: object = None  # put argument
    result: object = None  # get result (NOT_FOUND if absent)
    invoke_time: float = 0.0
    response_time: float = math.inf

    @property
    def complete(self) -> bool:
        return self.response_time != math.inf


class History:
    """An append-only record of invocations and responses."""

    def __init__(self) -> None:
        self._operations: dict[int, Operation] = {}

    def invoke(
        self,
        op_id: int,
        process: object,
        kind: str,
        key: int,
        value: object = None,
        time: float = 0.0,
    ) -> None:
        self._operations[op_id] = Operation(
            op_id=op_id, process=process, kind=kind, key=key, value=value,
            invoke_time=time,
        )

    def respond(self, op_id: int, time: float, result: object = None) -> None:
        operation = self._operations.get(op_id)
        if operation is None:
            raise KeyError(f"response for unknown op {op_id}")
        operation.response_time = time
        operation.result = result

    def discard(self, op_id: int) -> None:
        """Remove an operation entirely (e.g. an explicitly failed op that
        is known not to have taken effect is *not* removable — use this only
        for ops the experiment cancelled before issuing)."""
        self._operations.pop(op_id, None)

    @property
    def operations(self) -> tuple[Operation, ...]:
        return tuple(self._operations.values())

    def per_key(self) -> dict[int, list[Operation]]:
        keyed: dict[int, list[Operation]] = {}
        for operation in self._operations.values():
            keyed.setdefault(operation.key, []).append(operation)
        for operations in keyed.values():
            operations.sort(key=lambda op: op.invoke_time)
        return keyed

    def __len__(self) -> int:
        return len(self._operations)
