"""A Wing-Gong / WGL linearizability checker for register histories.

Searches for a legal sequential order of the recorded operations that
respects real time: an operation may only be linearized before another if
it did not strictly follow it.  Register semantics: a get must return the
value of the latest linearized put (or NOT_FOUND if none).

Pending operations (no response) are handled soundly: a pending *get*
constrains nothing and is dropped; a pending *put* may have taken effect at
any point after its invocation or never — the search explores both.

Complexity is exponential in the worst case (the problem is NP-complete)
but the candidate rule plus memoization on (remaining-set, register state)
handles the few-hundred-ops-per-key histories our simulations produce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from .history import History, NOT_FOUND, Operation


@dataclass
class CheckResult:
    linearizable: bool
    key: Optional[int] = None
    witness: Optional[tuple[int, ...]] = None  # op ids in linearized order
    reason: str = ""

    def to_findings(self) -> list:
        """Non-linearizable results as standard analysis findings (C001).

        ``python -m repro.analysis`` is the single reporting surface for
        every checker in the repo; scenario drivers collect these next to
        the static-analysis findings instead of inventing their own shape.
        """
        from ..analysis.findings import Finding

        if self.linearizable:
            return []
        where = "history" if self.key is None else f"key {self.key}"
        return [
            Finding(
                rule="C001",
                message=f"non-linearizable {where}: "
                + (self.reason or "no legal sequential order exists"),
                obj=where,
                extra={} if self.key is None else {"key": self.key},
            )
        ]


def check_history(history: History) -> CheckResult:
    """Check every key's sub-history; registers are independent."""
    for key, operations in history.per_key().items():
        result = check_register(operations)
        if not result.linearizable:
            return CheckResult(False, key=key, reason=result.reason)
    return CheckResult(True)


def check_register(operations: Sequence[Operation]) -> CheckResult:
    """Check one register's history for linearizability."""
    # Pending gets constrain nothing.
    ops = [
        op
        for op in operations
        if op.complete or op.kind == "put"
    ]
    if not ops:
        return CheckResult(True)

    ops = sorted(ops, key=lambda op: (op.invoke_time, op.response_time))
    index_of = {op.op_id: i for i, op in enumerate(ops)}
    n = len(ops)
    all_mask = (1 << n) - 1

    # Register states are identified by the op id of the last applied put
    # (None = initial NOT_FOUND state).
    seen: set[tuple[int, object]] = set()
    witness: list[int] = []

    def candidates(mask: int) -> list[int]:
        remaining = [i for i in range(n) if mask & (1 << i)]
        min_response = min(ops[i].response_time for i in remaining)
        return [i for i in remaining if ops[i].invoke_time <= min_response]

    def search(mask: int, state: object) -> bool:
        if mask == 0:
            return True
        key = (mask, state)
        if key in seen:
            return False
        seen.add(key)
        for i in candidates(mask):
            op = ops[i]
            next_mask = mask & ~(1 << i)
            if op.kind == "put":
                witness.append(op.op_id)
                if search(next_mask, op.op_id):
                    return True
                witness.pop()
                # A pending put may also never take effect at all.
                if not op.complete:
                    if search(next_mask, state):
                        return True
            else:  # get
                expected = NOT_FOUND if state is None else ops[index_of[state]].value
                if expected is NOT_FOUND:
                    matches = op.result is NOT_FOUND
                else:
                    matches = op.result is not NOT_FOUND and op.result == expected
                if matches:
                    witness.append(op.op_id)
                    if search(next_mask, state):
                        return True
                    witness.pop()
        return False

    if search(all_mask, None):
        return CheckResult(True, witness=tuple(witness))
    return CheckResult(
        False,
        reason=f"no linearization for {n} operations on key {ops[0].key}",
    )
